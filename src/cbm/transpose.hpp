// Transposed products with the CBM format: C = op(A)ᵀ · B.
//
// The CBM decomposition is the matrix identity  op(A) = S_l · L · A'_s,
// where A'_s is the (scaled) delta matrix, L is the path-accumulation
// operator of the compression tree ((L·M)_x = M_x + (L·M)_{r_x}, realised by
// the forward update stage) and S_l the row scaling of DAD-type kinds.
// Transposing,
//     op(A)ᵀ · B = A'_sᵀ · Lᵀ · (S_l · B),
// where Lᵀ accumulates every node's row into its parent in REVERSE
// topological order — the mirror image of the update stage. The column
// scaling folded into A'_s automatically becomes the output-row scaling of
// the transposed product.
//
// This enables CBM acceleration of gradient pullbacks through *directed*
// graphs (for symmetric adjacencies, Âᵀ = Â and plain multiply suffices —
// see gnn/train.cpp).
#pragma once

#include "cbm/cbm_matrix.hpp"

namespace cbm {

/// Precomputed transpose operator of a CbmMatrix. Holds A'ᵀ (one CSR
/// transpose, done once) plus the pieces of the source it needs; the source
/// may be destroyed afterwards.
template <typename T>
class CbmTranspose {
 public:
  /// Builds from a compressed matrix. O(nnz(A')) one-time cost.
  explicit CbmTranspose(const CbmMatrix<T>& source);

  /// C = op(A)ᵀ · B. C must be cols(A) × cols(B); overwritten. Uses an
  /// internal scratch buffer of the shape of B (grown on first use, reused
  /// afterwards — call multiply once with the production shape to
  /// pre-warm).
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                UpdateSchedule schedule = UpdateSchedule::kBranchDynamic);

  [[nodiscard]] index_t rows() const { return delta_t_.rows(); }
  [[nodiscard]] index_t cols() const { return delta_t_.cols(); }
  [[nodiscard]] const CsrMatrix<T>& delta_transposed() const {
    return delta_t_;
  }

 private:
  CbmKind kind_;
  CompressionTree tree_;
  CsrMatrix<T> delta_t_;  ///< A'_sᵀ
  std::vector<T> diag_;   ///< update-stage diagonal of the source
  DenseMatrix<T> scratch_;
};

/// The Lᵀ sweep: accumulates rows child→parent in reverse topological order,
/// scaling by the diagonal for row-scaled kinds. Exposed for tests.
template <typename T>
void cbm_reverse_update_stage(const CompressionTree& tree, CbmKind kind,
                              std::span<const T> diag, DenseMatrix<T>& c,
                              UpdateSchedule schedule);

extern template class CbmTranspose<float>;
extern template class CbmTranspose<double>;
extern template void cbm_reverse_update_stage<float>(const CompressionTree&,
                                                     CbmKind,
                                                     std::span<const float>,
                                                     DenseMatrix<float>&,
                                                     UpdateSchedule);
extern template void cbm_reverse_update_stage<double>(const CompressionTree&,
                                                      CbmKind,
                                                      std::span<const double>,
                                                      DenseMatrix<double>&,
                                                      UpdateSchedule);

}  // namespace cbm
