// cbm::check oracle harness — seeded input generators, naive dense
// reference kernels, and ULP-aware comparators for differential testing.
//
// Promoted out of tests/test_util.hpp so that every consumer of randomized
// cross-checking (the unit tests, test_differential's path×schedule sweep,
// fuzzing drivers, benches verifying their operands) shares one seeded,
// reproducible vocabulary. Everything here is deterministic given the seed;
// the CBM_TEST_SEED environment variable (see seed_from_name / env_seed)
// re-drives any failed randomized case from the seed it logged.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace cbm::check {

// ---------------------------------------------------------------- seeds --

/// Parses CBM_TEST_SEED (decimal, or hex with 0x prefix). nullopt when
/// unset/empty; throws CbmError on garbage (a mistyped seed must not
/// silently run a different case than the one being reproduced).
std::optional<std::uint64_t> env_seed();

/// Deterministic per-test seed: the CBM_TEST_SEED override when set, else a
/// 64-bit FNV-1a hash of `name` (e.g. the running gtest's "Suite.Case"
/// string) mixed with `salt`. Distinct names ⇒ independent cases; equal
/// names ⇒ bit-identical reruns. Log the returned value on failure so the
/// case reproduces via CBM_TEST_SEED.
std::uint64_t seed_from_name(std::string_view name, std::uint64_t salt = 0);

// ----------------------------------------------------------- generators --

/// Random binary n×n matrix with expected `density` fraction of ones.
template <typename T>
CsrMatrix<T> random_binary(index_t n, double density, std::uint64_t seed);

/// Random binary matrix with groups of near-duplicate rows (the regime CBM
/// compresses): `groups` templates, each row = its group's template with
/// `flips` random toggles.
template <typename T>
CsrMatrix<T> clustered_binary(index_t n, index_t groups, index_t base_nnz,
                              index_t flips, std::uint64_t seed);

/// Banded binary matrix: entries only within `bandwidth` of the diagonal,
/// present with probability `density` (mesh/chain-graph adjacency shape —
/// neighbouring rows overlap heavily, distant rows not at all).
template <typename T>
CsrMatrix<T> banded_binary(index_t n, index_t bandwidth, double density,
                           std::uint64_t seed);

/// Power-law binary matrix: column j is drawn ∝ 1/(j+1) (Zipf), `m` draws
/// per row — the skewed-degree regime of citation/social graphs where a few
/// hub columns appear in most rows.
template <typename T>
CsrMatrix<T> power_law_binary(index_t n, index_t m, std::uint64_t seed);

/// All-zero rows×cols matrix (nothing to compress; every path must still
/// produce an all-zero product).
template <typename T>
CsrMatrix<T> empty_binary(index_t rows, index_t cols);

/// All-ones matrix (one fully dense row pattern repeated — maximum row
/// similarity AND maximum row density at once).
template <typename T>
CsrMatrix<T> dense_binary(index_t rows, index_t cols);

/// Every row identical to one random template of `row_nnz` entries — the
/// maximum-compression case (the tree collapses to one chain/star and all
/// non-root delta rows are empty).
template <typename T>
CsrMatrix<T> identical_rows_binary(index_t n, index_t row_nnz,
                                   std::uint64_t seed);

/// One fully dense row (`dense_row`) in an otherwise random sparse matrix —
/// the outlier-row case that stresses nnz-balanced partitioning.
template <typename T>
CsrMatrix<T> single_dense_row_binary(index_t n, index_t dense_row,
                                     double density, std::uint64_t seed);

/// Densifies a CSR matrix (oracle input).
template <typename T>
DenseMatrix<T> to_dense(const CsrMatrix<T>& a);

/// Random dense matrix in [0, 1).
template <typename T>
DenseMatrix<T> random_dense(index_t rows, index_t cols, std::uint64_t seed);

/// Random positive diagonal in [0.5, 1.5).
template <typename T>
std::vector<T> random_diagonal(index_t n, std::uint64_t seed);

// ------------------------------------------------------ reference kernels --

/// C = A·B by the naive triple loop, accumulating in double regardless of T
/// — the trusted oracle every optimised path is differenced against.
template <typename T>
DenseMatrix<T> dense_reference_multiply(const CsrMatrix<T>& a,
                                        const DenseMatrix<T>& b);

/// C = Aᵀ·B, same contract (oracle for the CbmTranspose path).
template <typename T>
DenseMatrix<T> dense_reference_multiply_transposed(const CsrMatrix<T>& a,
                                                   const DenseMatrix<T>& b);

/// y = A·x (oracle for multiply_vector).
template <typename T>
std::vector<T> dense_reference_multiply_vector(const CsrMatrix<T>& a,
                                               std::span<const T> x);

// ------------------------------------------------------------ comparators --

/// Units-in-the-last-place distance between two finite values: 0 for
/// bitwise-equal (±0 included), else the number of representable values
/// between them, counting through zero when the signs differ. Non-finite
/// operands give INT64_MAX unless exactly equal.
std::int64_t ulp_distance(float a, float b);
std::int64_t ulp_distance(double a, double b);

/// Worst element of an actual-vs-expected comparison. An element passes when
/// |a−e| ≤ atol + rtol·|e| (numpy semantics, the paper's §VI-B protocol)
/// OR its ULP distance is ≤ max_ulps — the ULP escape keeps legitimate
/// reassociation differences from failing near zero crossings where relative
/// error explodes.
struct CompareResult {
  bool ok = true;
  index_t row = -1;        ///< worst element (−1 when shapes already differ)
  index_t col = -1;
  double actual = 0.0;
  double expected = 0.0;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;       ///< |a−e| / max(|e|, tiny)
  std::int64_t max_ulp = 0;       ///< ULP distance at the worst element

  /// "ok" or "row 3 col 7: actual … expected … (abs …, rel …, N ulp)".
  [[nodiscard]] std::string to_string() const;
};

template <typename T>
CompareResult compare_allclose(const DenseMatrix<T>& actual,
                               const DenseMatrix<T>& expected,
                               double rtol = 1e-5, double atol = 1e-6,
                               std::int64_t max_ulps = 4);

template <typename T>
CompareResult compare_allclose(std::span<const T> actual,
                               std::span<const T> expected,
                               double rtol = 1e-5, double atol = 1e-6,
                               std::int64_t max_ulps = 4);

#define CBM_CHECK_ORACLE_EXTERN(T)                                          \
  extern template CsrMatrix<T> random_binary<T>(index_t, double,            \
                                                std::uint64_t);             \
  extern template CsrMatrix<T> clustered_binary<T>(                         \
      index_t, index_t, index_t, index_t, std::uint64_t);                   \
  extern template CsrMatrix<T> banded_binary<T>(index_t, index_t, double,   \
                                                std::uint64_t);             \
  extern template CsrMatrix<T> power_law_binary<T>(index_t, index_t,        \
                                                   std::uint64_t);          \
  extern template CsrMatrix<T> empty_binary<T>(index_t, index_t);           \
  extern template CsrMatrix<T> dense_binary<T>(index_t, index_t);           \
  extern template CsrMatrix<T> identical_rows_binary<T>(index_t, index_t,   \
                                                        std::uint64_t);     \
  extern template CsrMatrix<T> single_dense_row_binary<T>(                  \
      index_t, index_t, double, std::uint64_t);                             \
  extern template DenseMatrix<T> to_dense<T>(const CsrMatrix<T>&);          \
  extern template DenseMatrix<T> random_dense<T>(index_t, index_t,          \
                                                 std::uint64_t);            \
  extern template std::vector<T> random_diagonal<T>(index_t,                \
                                                    std::uint64_t);         \
  extern template DenseMatrix<T> dense_reference_multiply<T>(               \
      const CsrMatrix<T>&, const DenseMatrix<T>&);                          \
  extern template DenseMatrix<T> dense_reference_multiply_transposed<T>(    \
      const CsrMatrix<T>&, const DenseMatrix<T>&);                          \
  extern template std::vector<T> dense_reference_multiply_vector<T>(        \
      const CsrMatrix<T>&, std::span<const T>);                             \
  extern template CompareResult compare_allclose<T>(                        \
      const DenseMatrix<T>&, const DenseMatrix<T>&, double, double,         \
      std::int64_t);                                                        \
  extern template CompareResult compare_allclose<T>(                        \
      std::span<const T>, std::span<const T>, double, double, std::int64_t)

CBM_CHECK_ORACLE_EXTERN(float);
CBM_CHECK_ORACLE_EXTERN(double);
#undef CBM_CHECK_ORACLE_EXTERN

}  // namespace cbm::check
