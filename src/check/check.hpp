// cbm::check — runtime invariant validation for the CBM format.
//
// Compression establishes structural invariants the paper proves but the
// rest of the code only assumes: Property 1 (total deltas ≤ nnz(A)), the
// compression tree being an arborescence rooted at the virtual node, delta
// rows that reconstruct the source exactly, and the §V-C α admission
// inequality (with the sign correction of DESIGN.md §1.3). This module
// re-verifies them on demand — after construction, after deserialisation,
// after partitioned assembly — and reports violations as structured data
// instead of asserting, so a corrupted matrix is diagnosable in production.
//
// Validation depth is the CBM_VALIDATE env knob (off | build | full):
//   off    no checks beyond the constructors' own preconditions;
//   build  structural checks only — O(n + nnz(A')), cheap enough to leave
//          on during every compression;
//   full   adds a reconstruction sweep (Equation 2 down the tree) that
//          cross-checks every delta row against its parent, Property 1,
//          and — when the source matrix is at hand — source equality and
//          α admissibility. O(nnz(A)) time and one decompressed copy.
// CbmMatrix construction (compress*/from_parts, hence also load_cbm) and
// CbmAdjacency honour the knob and throw CbmError on any violation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "sparse/csr.hpp"
#include "tree/compression_tree.hpp"

namespace cbm::check {

/// How deep validation goes (see file comment). Ordered: higher = stricter.
enum class ValidateLevel { kOff, kBuild, kFull };

[[nodiscard]] const char* to_string(ValidateLevel level);

/// Reads CBM_VALIDATE (off | build | full). Unset/empty = kOff; anything
/// else throws (a mistyped knob must not silently validate nothing).
ValidateLevel validate_level_from_env();

/// One violated invariant: the rule's stable name plus a human-readable
/// locator (row, column, expected/actual).
struct CheckIssue {
  std::string rule;
  std::string detail;
};

/// Outcome of one validate() call. `issues` empty ⇔ the matrix passed every
/// rule the level enables; `rules_checked` says how many rules ran (so a
/// kBuild pass is distinguishable from a kFull pass).
struct CheckReport {
  ValidateLevel level = ValidateLevel::kOff;
  int rules_checked = 0;
  std::vector<CheckIssue> issues;
  std::int64_t total_deltas = 0;       ///< nnz(A')
  std::int64_t reconstructed_nnz = -1; ///< nnz(op(A)); −1 = not reconstructed

  [[nodiscard]] bool ok() const { return issues.empty(); }

  /// One-line human summary ("cbm::check passed 9 rules at full" or the
  /// first issue plus a count).
  [[nodiscard]] std::string summary() const;

  /// Machine-readable form (obs::JsonWriter): level, rule count, per-issue
  /// rule/detail, delta accounting.
  [[nodiscard]] std::string to_json() const;
};

struct ValidateOptions {
  ValidateLevel level = ValidateLevel::kFull;
  /// ≥ 0: verify the §V-C admission inequality per compressed row,
  /// |Δ(x)| < nnz(A_x) − α (requires the source matrix). The MST path does
  /// not prune by α, so callers pass −1 (skip) for it.
  int alpha = -1;
  /// Issues recorded per rule before the report truncates (a corrupted
  /// matrix violates one rule thousands of times; the first few locate it).
  int max_issues_per_rule = 8;
};

/// Validates a CBM decomposition given as parts (what from_parts and the
/// serializer hold). Checks tree shape, topological order, the branch
/// decomposition, diagonal constraints for the kind, delta-row ordering,
/// and — at kFull — the reconstruction sweep plus Property 1.
template <typename T>
CheckReport validate_parts(const CompressionTree& tree, CbmKind kind,
                           std::span<const T> diag, const CsrMatrix<T>& delta,
                           const ValidateOptions& options = {});

/// validate_parts plus the checks only the construction site can make:
/// the reconstruction must equal `source` scaled by `column_scale` (empty =
/// unscaled), Property 1 against the true nnz(A) (available even at kBuild),
/// and α admissibility when options.alpha ≥ 0.
template <typename T>
CheckReport validate_against(const CompressionTree& tree, CbmKind kind,
                             std::span<const T> diag,
                             const CsrMatrix<T>& delta,
                             const CsrMatrix<T>& source,
                             std::span<const T> column_scale,
                             const ValidateOptions& options = {});

/// Convenience overload for an assembled matrix.
template <typename T>
CheckReport validate(const CbmMatrix<T>& m, const ValidateOptions& options = {}) {
  return validate_parts(m.tree(), m.kind(), m.diagonal(), m.delta_matrix(),
                        options);
}

/// Validates a matrix maintained by incremental mutation (cbm/mutate.cpp):
/// the full structural + reconstruction sweep, then the mutation
/// bookkeeping cross-checked against ground truth recomputed from the Eq. 2
/// reconstruction. Always runs at kFull depth (the reconstruction is the
/// point). Rules beyond validate()'s:
///  - mutation-source-nnz: the tracked nnz(op(A)) equals the
///    reconstruction's (skipped for a never-mutated from_parts matrix,
///    whose bookkeeping is lazily initialised);
///  - mutation-reparented: cumulative re-parents lie in [0, rows] and are 0
///    while the epoch is 0;
///  - mutation-property-1: nnz(A') ≤ the tracked source nnz — Property 1
///    holds against the bookkeeping, not just the reconstruction;
///  - mutation-staleness: staleness() matches the formula recomputed here
///    from the tracked state, and lies in [0, 1] (0 at epoch 0);
///  - mutation-alpha-admissible: every surviving tree edge still satisfies
///    the sign-corrected §V-C admission |Δ(x)| < nnz(A_x) − α at the
///    matrix's own α, with nnz(A_x) taken from the reconstruction.
/// `expected` (optional): the post-mutation pattern the caller believes
/// op(A) should have — compared column-exactly per row (values are the
/// scaling's business and already pinned by the reconstruction rule).
template <typename T>
CheckReport validate_mutation(const CbmMatrix<T>& m,
                              const CsrMatrix<T>* expected = nullptr,
                              const ValidateOptions& options = {});

/// Throws CbmError carrying report.summary() when the report has issues.
void enforce(const CheckReport& report);

extern template CheckReport validate_parts<float>(const CompressionTree&,
                                                  CbmKind,
                                                  std::span<const float>,
                                                  const CsrMatrix<float>&,
                                                  const ValidateOptions&);
extern template CheckReport validate_parts<double>(const CompressionTree&,
                                                   CbmKind,
                                                   std::span<const double>,
                                                   const CsrMatrix<double>&,
                                                   const ValidateOptions&);
extern template CheckReport validate_against<float>(
    const CompressionTree&, CbmKind, std::span<const float>,
    const CsrMatrix<float>&, const CsrMatrix<float>&, std::span<const float>,
    const ValidateOptions&);
extern template CheckReport validate_against<double>(
    const CompressionTree&, CbmKind, std::span<const double>,
    const CsrMatrix<double>&, const CsrMatrix<double>&,
    std::span<const double>, const ValidateOptions&);
extern template CheckReport validate_mutation<float>(const CbmMatrix<float>&,
                                                     const CsrMatrix<float>*,
                                                     const ValidateOptions&);
extern template CheckReport validate_mutation<double>(
    const CbmMatrix<double>&, const CsrMatrix<double>*,
    const ValidateOptions&);

}  // namespace cbm::check
