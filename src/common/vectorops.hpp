// Span-based dense vector kernels: the axpy family used by the CBM update
// stage (the paper offloads these to MKL's axpy; we provide an OpenMP-SIMD
// implementation with identical semantics).
#pragma once

#include <cstddef>
#include <span>

#include "common/error.hpp"

namespace cbm {

/// y += x (element-wise). Sizes must match.
template <typename T>
inline void vec_add(std::span<const T> x, std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_add size mismatch");
  const T* __restrict__ xp = x.data();
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] += xp[i];
}

/// y += a * x.
template <typename T>
inline void vec_axpy(T a, std::span<const T> x, std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_axpy size mismatch");
  const T* __restrict__ xp = x.data();
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] += a * xp[i];
}

/// y = a * (b * x + y): the fused scale-and-update of the DADX update stage
/// (Eq. 6 of the paper), computed in one pass over y.
template <typename T>
inline void vec_fused_scale_add(T a, T b, std::span<const T> x,
                                std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_fused_scale_add size mismatch");
  const T* __restrict__ xp = x.data();
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] = a * (b * xp[i] + yp[i]);
}

/// y *= a.
template <typename T>
inline void vec_scale(T a, std::span<T> y) {
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] *= a;
}

/// y = x.
template <typename T>
inline void vec_copy(std::span<const T> x, std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_copy size mismatch");
  const T* __restrict__ xp = x.data();
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i];
}

/// y = 0.
template <typename T>
inline void vec_zero(std::span<T> y) {
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] = T{0};
}

/// Dot product.
template <typename T>
inline T vec_dot(std::span<const T> x, std::span<const T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_dot size mismatch");
  const T* __restrict__ xp = x.data();
  const T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
  T acc{0};
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) acc += xp[i] * yp[i];
  return acc;
}

}  // namespace cbm
