#include "bench_util/env.hpp"

#include <iostream>

#include "bench_util/report.hpp"
#include "common/envknobs.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace cbm {

// All three delegate to the strict parsers in common/envknobs.hpp: a knob
// holding garbage ("12abc", "fast") throws with the variable name instead of
// silently benchmarking a half-parsed configuration.
int env_int(const char* name, int fallback) {
  return env_int_strict(name, fallback);
}

double env_double(const char* name, double fallback) {
  return env_double_strict(name, fallback);
}

std::string env_string(const char* name, const std::string& fallback) {
  return env_string_knob(name, fallback);
}

BenchConfig BenchConfig::from_env() {
  BenchConfig c;
  c.cols = env_int("CBM_BENCH_COLS", c.cols);
  c.reps = env_int("CBM_BENCH_REPS", c.reps);
  c.warmup = env_int("CBM_BENCH_WARMUP", c.warmup);
  c.threads = env_int("CBM_BENCH_THREADS", 0);
  c.scale = env_double("CBM_BENCH_SCALE", c.scale);
  c.mtx_dir = env_string("CBM_BENCH_MTX_DIR", "");
  // A bad knob must fail loudly: zero columns or reps silently produce
  // degenerate (empty) measurements, and scale outside (0,1] builds graphs
  // the stand-in calibration says nothing about.
  CBM_CHECK(c.cols > 0, "CBM_BENCH_COLS must be positive");
  CBM_CHECK(c.reps > 0, "CBM_BENCH_REPS must be positive");
  CBM_CHECK(c.warmup >= 0, "CBM_BENCH_WARMUP must be nonnegative");
  CBM_CHECK(c.scale > 0.0 && c.scale <= 1.0,
            "CBM_BENCH_SCALE must be in (0, 1]");
  if (c.threads <= 0) c.threads = max_threads();
  return c;
}

void print_bench_header(const BenchConfig& config, const std::string& title) {
  const HostInfo host = HostInfo::detect();
  std::cout << "# " << title << '\n';
  std::cout << "# threads=" << config.threads << " cols=" << config.cols
            << " reps=" << config.reps << " warmup=" << config.warmup
            << " scale=" << config.scale;
  if (!config.mtx_dir.empty()) std::cout << " mtx_dir=" << config.mtx_dir;
  std::cout << "\n# build=" << host.build_type << " compiler=" << host.compiler
            << " openmp=" << (host.openmp ? "on" : "off")
            << " host=" << host.hostname;
  std::cout << "\n# (paper protocol: 500 cols, 250 reps, 16 cores;"
            << " override via CBM_BENCH_* env vars)\n";
}

}  // namespace cbm
