// Graph statistics reported in the paper's Tables I and V.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace cbm {

/// Degree distribution summary.
struct DegreeStats {
  index_t min = 0;
  index_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

DegreeStats degree_stats(const Graph& g);

/// Local clustering coefficient of node v: triangles(v) / (deg(v) choose 2);
/// 0 for degree < 2.
double local_clustering(const Graph& g, index_t v);

/// Exact average clustering coefficient (mean of local coefficients over all
/// nodes) — the Table V metric. Parallelised over nodes.
double average_clustering(const Graph& g);

/// Sampled estimate over `samples` random nodes (Schank–Wagner style); used
/// when the exact computation would dominate a bench run.
double average_clustering_sampled(const Graph& g, index_t samples,
                                  std::uint64_t seed);

/// Total triangle count (each triangle counted once).
std::uint64_t triangle_count(const Graph& g);

/// Number of connected components (BFS).
index_t connected_components(const Graph& g);

}  // namespace cbm
