// Strict environment-knob parsing, shared by every CBM_* integer/double
// knob. The historical per-call-site atoi()/atof() parsing accepted garbage
// silently ("12abc" → 12, "fast" → 0), which for a benchmark harness means
// quietly measuring the wrong configuration. These parsers consume the whole
// string or throw a CbmError naming the offending variable.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace cbm {

/// Integer knob: unset/empty → fallback; non-numeric, trailing garbage, or
/// out-of-range input throws CbmError naming `name`.
int env_int_strict(const char* name, int fallback);

/// Like env_int_strict, but additionally rejects values < 1.
int env_positive_int(const char* name, int fallback);

/// Double knob with the same whole-string contract.
double env_double_strict(const char* name, double fallback);

/// String knob: unset/empty → fallback.
std::string env_string_knob(const char* name, const std::string& fallback);

/// The CBM_TILE_COLS override, validated in one place: nullopt when unset,
/// the (positive) requested width otherwise. Zero, negative, and non-numeric
/// values throw.
std::optional<index_t> env_tile_cols();

/// Hardware performance-counter sampling policy (obs/hw.hpp).
enum class PerfMode {
  kOff,    ///< never open counters; sampling points cost one atomic load
  kOn,     ///< sample; degrade to "unavailable" reports when the kernel or
           ///< container refuses perf_event_open
  kForce,  ///< sample; refusing every counter is an error, not a silent
           ///< absence (use where unattributed numbers must not pass as real)
};

/// Reads CBM_PERF (off | on | force; unset/empty = off). Unknown values
/// throw — a mistyped knob must not silently drop counter attribution.
PerfMode perf_mode_from_env();

/// Stable lower-case name of a PerfMode (telemetry / error messages).
const char* perf_mode_name(PerfMode mode);

}  // namespace cbm
