// Tests for pattern utilities (binarize / symmetrize / prune) and the R-MAT
// generator.
#include <gtest/gtest.h>

#include "cbm/cbm_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sparse/pattern.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(Pattern, BinarizeReplacesValues) {
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(0, 1, 2.5f);
  coo.push(2, 0, -4.0f);
  const auto b = binarize(CsrMatrix<float>::from_coo(coo));
  EXPECT_TRUE(b.is_binary());
  EXPECT_EQ(b.nnz(), 2);
  EXPECT_FLOAT_EQ(b.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(b.at(2, 0), 1.0f);
}

TEST(Pattern, SymmetrizeMirrorsAndDropsDiagonal) {
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(0, 1, 5.0f);   // only one direction stored
  coo.push(1, 1, 7.0f);   // diagonal must vanish
  coo.push(2, 0, 1.0f);
  const auto s = symmetrize_pattern(CsrMatrix<float>::from_coo(coo));
  EXPECT_TRUE(s.is_binary());
  EXPECT_FLOAT_EQ(s.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 0.0f);
  EXPECT_EQ(s.nnz(), 4);
  // Result is a valid Graph adjacency.
  EXPECT_NO_THROW(Graph::from_adjacency(s));
}

TEST(Pattern, SymmetrizeRequiresSquare) {
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 3;
  EXPECT_THROW(symmetrize_pattern(CsrMatrix<float>::from_coo(coo)), CbmError);
}

TEST(Pattern, PruneZerosRemovesExplicitZeros) {
  CsrMatrix<float> a(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0f, 0.0f, 3.0f});
  const auto p = prune_zeros(a);
  EXPECT_EQ(p.nnz(), 2);
  EXPECT_FLOAT_EQ(p.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(p.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(p.at(1, 1), 3.0f);
}

TEST(Rmat, ProducesScaleFreeSimpleGraph) {
  const Graph g = rmat({.scale = 10, .edges_per_node = 8.0}, 77);
  EXPECT_EQ(g.num_nodes(), 1024);
  EXPECT_GT(g.num_edges(), 2000);
  const auto& adj = g.adjacency();
  EXPECT_TRUE(adj.is_binary());
  EXPECT_TRUE(adj.has_sorted_unique_rows());
  // Skewed degrees: the max degree far exceeds the mean.
  const auto stats = degree_stats(g);
  EXPECT_GT(stats.max, 5 * stats.mean);
}

TEST(Rmat, DeterministicAndParamValidated) {
  const Graph a = rmat({.scale = 8}, 5);
  const Graph b = rmat({.scale = 8}, 5);
  EXPECT_EQ(a.adjacency(), b.adjacency());
  EXPECT_THROW(rmat({.scale = 0}, 1), CbmError);
  EXPECT_THROW(rmat({.scale = 8, .edges_per_node = 8, .a = 0.6, .b = 0.3,
                     .c = 0.2},
                    1),
               CbmError);
}

TEST(Rmat, IsAHardCaseForCbm) {
  // R-MAT rows have weak similarity: compression should hover near 1× —
  // the negative control for the community graphs.
  const Graph g = rmat({.scale = 11, .edges_per_node = 8.0}, 9);
  CbmStats stats;
  CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = 0}, &stats);
  const double ratio =
      static_cast<double>(g.adjacency().bytes()) / stats.bytes;
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace cbm
