// Disjoint-set union with path halving and union by size.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cbm {

/// Union–find over {0, ..., n-1}.
class UnionFind {
 public:
  explicit UnionFind(index_t n);

  /// Representative of x's set (with path halving).
  index_t find(index_t x);

  /// Merges the sets of a and b; returns false when already joined.
  bool unite(index_t a, index_t b);

  /// True when a and b share a set.
  bool connected(index_t a, index_t b) { return find(a) == find(b); }

  [[nodiscard]] index_t num_sets() const { return sets_; }

 private:
  std::vector<index_t> parent_;
  std::vector<index_t> size_;
  index_t sets_;
};

}  // namespace cbm
