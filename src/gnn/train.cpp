#include "gnn/train.hpp"

#include <algorithm>
#include <cmath>

#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "obs/obs.hpp"

namespace cbm {

template <typename T>
double softmax_cross_entropy(const DenseMatrix<T>& logits,
                             std::span<const index_t> labels,
                             DenseMatrix<T>& dlogits) {
  CBM_CHECK(labels.size() == static_cast<std::size_t>(logits.rows()),
            "one label per row required");
  CBM_CHECK(dlogits.rows() == logits.rows() && dlogits.cols() == logits.cols(),
            "dlogits shape mismatch");
  const index_t n = logits.rows();
  const index_t c = logits.cols();
  // Validate before entering the parallel region (throwing across an OpenMP
  // boundary would terminate).
  for (index_t i = 0; i < n; ++i) {
    CBM_CHECK(labels[i] >= 0 && labels[i] < c, "label out of range");
  }
  double loss = 0.0;
#pragma omp parallel for reduction(+ : loss) schedule(static)
  for (index_t i = 0; i < n; ++i) {
    const auto row = logits.row(i);
    auto grad = dlogits.row(i);
    // Stable softmax.
    T maxv = row[0];
    for (index_t j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
    double denom = 0.0;
    for (index_t j = 0; j < c; ++j) {
      denom += std::exp(static_cast<double>(row[j] - maxv));
    }
    const double log_denom = std::log(denom);
    loss += log_denom - static_cast<double>(row[labels[i]] - maxv);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (index_t j = 0; j < c; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - maxv)) / denom;
      grad[j] = static_cast<T>((p - (j == labels[i] ? 1.0 : 0.0)) * inv_n);
    }
  }
  return loss / static_cast<double>(n);
}

template <typename T>
GcnTrainer<T>::GcnTrainer(Gcn2<T>& model, index_t n)
    : model_(model),
      xw_(n, model.layer0().out_features()),
      h1pre_(n, model.layer0().out_features()),
      h1_(n, model.layer0().out_features()),
      hw_(n, model.layer1().out_features()),
      out_(n, model.layer1().out_features()),
      dout_(n, model.layer1().out_features()),
      dz1_(n, model.layer1().out_features()),
      dh1_(n, model.layer0().out_features()),
      dz0_(n, model.layer0().out_features()),
      dw0_(model.layer0().in_features(), model.layer0().out_features()),
      dw1_(model.layer1().in_features(), model.layer1().out_features()) {}

template <typename T>
double GcnTrainer<T>::step(const AdjacencyOp<T>& adj, const DenseMatrix<T>& x,
                           std::span<const index_t> labels, T learning_rate) {
  CBM_SPAN("gnn.train.step");
  CBM_COUNTER_ADD("gnn.train.steps", 1);
  double loss = 0.0;
  {
    // Forward with caches:
    //   Z0 = X·W0, H1pre = Â·Z0, H1 = ReLU(H1pre), Z1 = H1·W1, out = Â·Z1.
    CBM_SPAN("gnn.train.forward");
    gemm(x, model_.layer0().weight(), xw_);
    adj.multiply(xw_, h1pre_);
    h1_ = h1pre_;
    relu_inplace(h1_);
    gemm(h1_, model_.layer1().weight(), hw_);
    adj.multiply(hw_, out_);
  }
  {
    CBM_SPAN("gnn.train.loss");
    loss = softmax_cross_entropy(out_, labels, dout_);
  }
  {
    // Backward. Â is symmetric, so ∂(Â·Z)/∂Z pulls back through the same
    // operand (this is where CBM accelerates training, §VIII).
    CBM_SPAN("gnn.train.backward");
    adj.multiply(dout_, dz1_);                    // dZ1 = Âᵀ·dOut = Â·dOut
    {
      const DenseMatrix<T> h1t = transpose(h1_);
      gemm(h1t, dz1_, dw1_);                      // dW1 = H1ᵀ·dZ1
    }
    {
      const DenseMatrix<T> w1t = transpose(model_.layer1().weight());
      gemm(dz1_, w1t, dh1_);                      // dH1 = dZ1·W1ᵀ
    }
    // ReLU mask: dH1pre = dH1 ⊙ [H1pre > 0] (in place on dh1_).
    {
      const T* __restrict__ pre = h1pre_.data();
      T* __restrict__ g = dh1_.data();
      const std::size_t total = dh1_.size();
#pragma omp parallel for simd schedule(static)
      for (std::size_t i = 0; i < total; ++i) {
        g[i] = pre[i] > T{0} ? g[i] : T{0};
      }
    }
    adj.multiply(dh1_, dz0_);                     // dZ0 = Â·dH1pre
    {
      const DenseMatrix<T> xt = transpose(x);
      gemm(xt, dz0_, dw0_);                       // dW0 = Xᵀ·dZ0
    }
  }

  // SGD update.
  CBM_SPAN("gnn.train.sgd");
  auto sgd = [learning_rate](DenseMatrix<T>& w, const DenseMatrix<T>& g) {
    T* __restrict__ wp = w.data();
    const T* __restrict__ gp = g.data();
    const std::size_t total = w.size();
#pragma omp parallel for simd schedule(static)
    for (std::size_t i = 0; i < total; ++i) wp[i] -= learning_rate * gp[i];
  };
  sgd(model_.layer0_mut().weight_mut(), dw0_);
  sgd(model_.layer1_mut().weight_mut(), dw1_);
  return loss;
}

template double softmax_cross_entropy<float>(const DenseMatrix<float>&,
                                             std::span<const index_t>,
                                             DenseMatrix<float>&);
template double softmax_cross_entropy<double>(const DenseMatrix<double>&,
                                              std::span<const index_t>,
                                              DenseMatrix<double>&);
template class GcnTrainer<float>;
template class GcnTrainer<double>;

}  // namespace cbm
