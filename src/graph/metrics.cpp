#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace cbm {

namespace {

/// Triangles through v = number of adjacent pairs among v's neighbors,
/// counted by sorted-list intersection (adjacency rows are sorted).
std::uint64_t triangles_at(const Graph& g, index_t v) {
  const auto nv = g.neighbors(v);
  std::uint64_t t = 0;
  for (const index_t u : nv) {
    const auto nu = g.neighbors(u);
    // Count |N(v) ∩ N(u)| by linear merge.
    std::size_t i = 0, j = 0;
    while (i < nv.size() && j < nu.size()) {
      if (nv[i] == nu[j]) {
        ++t;
        ++i;
        ++j;
      } else if (nv[i] < nu[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  return t / 2;  // each adjacent pair (u,w) found twice (via u and via w)
}

}  // namespace

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const index_t n = g.num_nodes();
  if (n == 0) return s;
  s.min = g.degree(0);
  s.max = g.degree(0);
  double sum = 0.0, sum2 = 0.0;
  for (index_t v = 0; v < n; ++v) {
    const index_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += d;
    sum2 += static_cast<double>(d) * d;
  }
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum2 / n - s.mean * s.mean));
  return s;
}

double local_clustering(const Graph& g, index_t v) {
  const auto d = static_cast<double>(g.degree(v));
  if (d < 2.0) return 0.0;
  const double wedges = d * (d - 1.0) / 2.0;
  return static_cast<double>(triangles_at(g, v)) / wedges;
}

double average_clustering(const Graph& g) {
  const index_t n = g.num_nodes();
  if (n == 0) return 0.0;
  double acc = 0.0;
#pragma omp parallel for reduction(+ : acc) schedule(dynamic, 256)
  for (index_t v = 0; v < n; ++v) acc += local_clustering(g, v);
  return acc / n;
}

double average_clustering_sampled(const Graph& g, index_t samples,
                                  std::uint64_t seed) {
  CBM_CHECK(samples > 0, "need at least one sample");
  const index_t n = g.num_nodes();
  if (n == 0) return 0.0;
  Rng rng(seed);
  std::vector<index_t> picks(static_cast<std::size_t>(samples));
  for (auto& v : picks) v = static_cast<index_t>(rng.next_below(n));
  double acc = 0.0;
#pragma omp parallel for reduction(+ : acc) schedule(dynamic, 64)
  for (index_t i = 0; i < samples; ++i) acc += local_clustering(g, picks[i]);
  return acc / samples;
}

std::uint64_t triangle_count(const Graph& g) {
  const index_t n = g.num_nodes();
  std::uint64_t acc = 0;
#pragma omp parallel for reduction(+ : acc) schedule(dynamic, 256)
  for (index_t v = 0; v < n; ++v) acc += triangles_at(g, v);
  return acc / 3;  // each triangle counted at each of its 3 vertices
}

index_t connected_components(const Graph& g) {
  const index_t n = g.num_nodes();
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> stack;
  index_t components = 0;
  for (index_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ++components;
    stack.push_back(s);
    visited[s] = true;
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (const index_t u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace cbm
