#include "bench_util/report.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/cache_info.hpp"
#include "common/vectorops.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace cbm {

namespace {

std::string detect_hostname() {
#ifndef _WIN32
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string detect_compiler() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

}  // namespace

HostInfo HostInfo::detect() {
  HostInfo info;
  info.hostname = detect_hostname();
  info.compiler = detect_compiler();
#ifdef NDEBUG
  info.build_type = "Release";
#else
  info.build_type = "Debug";
#endif
#ifdef _OPENMP
  info.openmp = true;
#endif
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

BenchReport::BenchReport(std::string bench_name, const BenchConfig& config)
    : bench_name_(std::move(bench_name)), config_(config) {
  const char* path = std::getenv("CBM_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    path_ = path;
    // The document's "metrics" section should cover everything the bench
    // runs, so start collecting right away.
    obs::set_metrics_enabled(true);
  }
}

BenchReport::~BenchReport() {
  if (enabled() && !written_) write();
}

void BenchReport::add(
    std::string name, const RunStats& stats,
    std::vector<std::pair<std::string, std::string>> labels) {
  if (!enabled()) return;
  measurements_.push_back(
      {std::move(name), std::move(labels), stats});
  written_ = false;
}

void BenchReport::add_scalar(
    std::string name, double value,
    std::vector<std::pair<std::string, std::string>> labels) {
  RunStats stats;
  stats.add(value);
  add(std::move(name), stats, std::move(labels));
}

void BenchReport::write() {
  if (!enabled()) return;
  std::ofstream os(path_);
  if (!os) {
    std::cerr << "CBM_BENCH_JSON: cannot open " << path_ << '\n';
    return;
  }
  const HostInfo host = HostInfo::detect();

  obs::JsonWriter w(os);
  w.begin_object();
  w.value("schema", "cbm-bench-v1");
  w.value("bench", bench_name_);

  w.begin_object("config");
  w.value("cols", config_.cols);
  w.value("reps", config_.reps);
  w.value("warmup", config_.warmup);
  w.value("threads", config_.threads);
  w.value("scale", config_.scale);
  w.value("mtx_dir", config_.mtx_dir);
  w.end_object();

  w.begin_object("host");
  w.value("hostname", host.hostname);
  w.value("compiler", host.compiler);
  w.value("build_type", host.build_type);
  w.value("openmp", host.openmp);
  w.value("hardware_threads", host.hardware_threads);
  w.end_object();

  // SIMD tier + cache geometry, so a pasted report says which kernels ran
  // and what the tile policy saw (docs/tuning.md).
  const CacheInfo& cache = CacheInfo::host();
  w.begin_object("cpu");
  w.value("simd_active", simd_level_name(simd_level()));
  w.value("simd_max", simd_level_name(simd_max_supported()));
  w.value("avx2", simd_level_supported(SimdLevel::kAvx2));
  w.value("avx512", simd_level_supported(SimdLevel::kAvx512));
  w.value("l1d_bytes", static_cast<std::uint64_t>(cache.l1d_bytes));
  w.value("l2_bytes", static_cast<std::uint64_t>(cache.l2_bytes));
  w.value("llc_bytes", static_cast<std::uint64_t>(cache.llc_bytes));
  w.end_object();

  w.begin_array("measurements");
  for (const BenchMeasurement& m : measurements_) {
    w.begin_object();
    w.value("name", m.name);
    if (!m.labels.empty()) {
      w.begin_object("labels");
      for (const auto& [key, value] : m.labels) w.value(key, value);
      w.end_object();
    }
    w.value("count", static_cast<std::uint64_t>(m.stats.count()));
    w.value("mean", m.stats.mean());
    w.value("stddev", m.stats.stddev());
    w.value("min", m.stats.min());
    w.value("max", m.stats.max());
    w.value("median", m.stats.median());
    w.end_object();
  }
  w.end_array();

  // Per-stage counters/gauges/timings collected while the bench ran.
  w.raw("metrics", obs::metrics_json(obs::metrics_snapshot()));
  if (obs::trace_enabled()) w.value("trace_path", obs::trace_path());
  w.end_object();
  os << '\n';
  written_ = true;
}

}  // namespace cbm
