// Property tests for the paper's formal claims:
//   Property 1 — total deltas never exceed nnz(A);
//   Property 2 — CBM scalar ops never exceed CSR scalar ops (α = 0);
//   Property 3 — multiply() allocates nothing beyond its operands;
// plus MST/MCA cost agreement at α = 0 and compression-behaviour checks.
#include <gtest/gtest.h>

#include "cbm/cbm_matrix.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

/// CSR scalar-op count with the paper's per-row convention (2·nnz − 1 ops
/// per nonempty row per output column).
std::size_t csr_scalar_ops(const CsrMatrix<float>& a, index_t bcols) {
  std::size_t per_column = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto nnz = static_cast<std::size_t>(a.row_nnz(i));
    per_column += nnz > 0 ? 2 * nnz - 1 : 0;
  }
  return per_column * static_cast<std::size_t>(bcols);
}

class PropertySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySeeds, Property1DeltasBoundedByNnz) {
  const auto seed = GetParam();
  const auto a = test::clustered_binary(80, 6, 12, 3, seed);
  for (const int alpha : {0, 1, 4, 16}) {
    CbmStats stats;
    const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha}, &stats);
    EXPECT_LE(stats.total_deltas, stats.source_nnz)
        << "alpha=" << alpha << " seed=" << seed;
    EXPECT_EQ(stats.total_deltas, cbm.delta_matrix().nnz());
  }
}

TEST_P(PropertySeeds, Property1HoldsOnUnclusteredMatrices) {
  const auto a = test::random_binary(60, 0.08, GetParam());
  CbmStats stats;
  CbmMatrix<float>::compress(a, {}, &stats);
  EXPECT_LE(stats.total_deltas, stats.source_nnz);
}

TEST_P(PropertySeeds, Property2OpCountAtAlphaZero) {
  const auto a = test::clustered_binary(70, 5, 10, 2, GetParam() * 3 + 1);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0});
  EXPECT_LE(cbm.scalar_ops(16), csr_scalar_ops(a, 16));
}

TEST_P(PropertySeeds, MstAndMcaCostsAgreeAtAlphaZero) {
  // With symmetric weights, the min arborescence rooted at the virtual node
  // costs exactly as much as the MST of the full distance graph; the pruned
  // directed graph removes only never-useful edges.
  const auto a = test::clustered_binary(50, 4, 9, 2, GetParam() * 7 + 5);
  CbmStats mca_stats, mst_stats;
  CbmMatrix<float>::compress(
      a, {.alpha = 0, .algorithm = TreeAlgorithm::kMca}, &mca_stats);
  CbmMatrix<float>::compress(
      a, {.alpha = 0, .algorithm = TreeAlgorithm::kMst}, &mst_stats);
  EXPECT_EQ(mca_stats.tree_weight, mst_stats.tree_weight);
  EXPECT_EQ(mca_stats.total_deltas, mst_stats.total_deltas);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(CbmProperties, TreeWeightEqualsTotalDeltas) {
  // The MCA cost is by construction the number of stored deltas.
  const auto a = test::clustered_binary(64, 4, 11, 2, 99);
  for (const int alpha : {0, 2, 8}) {
    CbmStats stats;
    CbmMatrix<float>::compress(a, {.alpha = alpha}, &stats);
    EXPECT_EQ(stats.tree_weight, stats.total_deltas) << "alpha=" << alpha;
  }
}

TEST(CbmProperties, ClusteredCompressesBetterThanRandom) {
  // The paper's central empirical claim, in miniature: near-duplicate rows
  // compress far below nnz; i.i.d. random rows do not.
  CbmStats clustered_stats, random_stats;
  CbmMatrix<float>::compress(test::clustered_binary(100, 5, 14, 1, 7),
                             {.alpha = 0}, &clustered_stats);
  CbmMatrix<float>::compress(test::random_binary(100, 0.14, 7), {.alpha = 0},
                             &random_stats);
  const double clustered_ratio =
      static_cast<double>(clustered_stats.total_deltas) /
      clustered_stats.source_nnz;
  const double random_ratio =
      static_cast<double>(random_stats.total_deltas) /
      random_stats.source_nnz;
  EXPECT_LT(clustered_ratio, 0.5);
  EXPECT_GT(random_ratio, 0.8);
}

TEST(CbmProperties, AlphaTradesCompressionForRootFanout) {
  const auto a = test::clustered_binary(120, 8, 12, 3, 21);
  std::int64_t prev_deltas = -1;
  index_t prev_fanout = -1;
  CbmStats s0, s32;
  CbmMatrix<float>::compress(a, {.alpha = 0}, &s0);
  CbmMatrix<float>::compress(a, {.alpha = 32}, &s32);
  // Larger α prunes more candidate edges, pushing rows to the virtual root:
  // fan-out (parallelism) rises while compression quality degrades.
  EXPECT_GE(s32.root_out_degree, s0.root_out_degree);
  EXPECT_GE(s32.total_deltas, s0.total_deltas);
  (void)prev_deltas;
  (void)prev_fanout;
}

TEST(CbmProperties, AlphaOneCannotLoseMemoryOnBreakEvenRows) {
  // §V-C Example 1: at α=1 edges saving < 1 delta are pruned, so memory can
  // only improve or tie relative to α=0 in delta count terms per admitted
  // edge; overall deltas(α=1) >= deltas(α=0) but the tree gets cheaper rows.
  const auto a = test::clustered_binary(90, 6, 10, 4, 23);
  CbmStats s0, s1;
  CbmMatrix<float>::compress(a, {.alpha = 0}, &s0);
  CbmMatrix<float>::compress(a, {.alpha = 1}, &s1);
  EXPECT_GE(s1.total_deltas, s0.total_deltas);
  // Admission guarantee at α=1: every compressed row saves more than one
  // delta (nd − nnz < −1), so no Example-1 break-even rows survive.
  const auto cbm1 = CbmMatrix<float>::compress(a, {.alpha = 1});
  for (index_t x = 0; x < a.rows(); ++x) {
    if (!cbm1.tree().is_root_child(x)) {
      EXPECT_LT(cbm1.delta_matrix().row_nnz(x) - a.row_nnz(x), -1);
    }
  }
}

TEST(CbmProperties, StatsBytesMatchObjectBytes) {
  const auto a = test::clustered_binary(50, 4, 8, 2, 25);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {}, &stats);
  EXPECT_EQ(stats.bytes, cbm.bytes());
  EXPECT_GT(stats.build_seconds, 0.0);
  EXPECT_EQ(stats.root_out_degree, cbm.tree().root_out_degree());
}

TEST(CbmProperties, DeterministicAcrossRuns) {
  const auto a = test::clustered_binary(60, 5, 9, 2, 27);
  CbmStats s1, s2;
  const auto m1 = CbmMatrix<float>::compress(a, {.alpha = 2}, &s1);
  const auto m2 = CbmMatrix<float>::compress(a, {.alpha = 2}, &s2);
  EXPECT_EQ(m1.delta_matrix(), m2.delta_matrix());
  EXPECT_EQ(s1.total_deltas, s2.total_deltas);
  EXPECT_EQ(s1.root_out_degree, s2.root_out_degree);
}

TEST(CbmProperties, ScaledVariantsShareTreeAndSparsity) {
  // §V-A: (A)' and (AD)' have identical sparsity patterns, so AX and ADX
  // should perform identically (the paper's Table III observation).
  const auto a = test::clustered_binary(55, 4, 9, 2, 29);
  const auto diag = test::random_diagonal<float>(55, 30);
  const auto plain = CbmMatrix<float>::compress(a, {.alpha = 2});
  const auto scaled = CbmMatrix<float>::compress_scaled(
      a, std::span<const float>(diag), CbmKind::kColumnScaled, {.alpha = 2});
  EXPECT_EQ(plain.delta_matrix().nnz(), scaled.delta_matrix().nnz());
  ASSERT_EQ(plain.tree().num_rows(), scaled.tree().num_rows());
  for (index_t x = 0; x < 55; ++x) {
    EXPECT_EQ(plain.tree().parent(x), scaled.tree().parent(x));
  }
  // AD folds the diagonal into values: no extra memory vs plain.
  EXPECT_EQ(plain.bytes(), scaled.bytes());
  // DAD keeps d resident (paper notes this overhead explicitly).
  const auto sym = CbmMatrix<float>::compress_scaled(
      a, std::span<const float>(diag), CbmKind::kSymScaled, {.alpha = 2});
  EXPECT_EQ(sym.bytes(), plain.bytes() + 55 * sizeof(float));
}

}  // namespace
}  // namespace cbm
