// Fixed-width console table printer used by the paper-table benches.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace cbm {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Prints header, separator and all rows to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds as "x.xxxx" (the paper's table precision).
std::string fmt_seconds(double s);

/// Formats with `digits` decimal places.
std::string fmt_double(double v, int digits = 2);

/// Formats "mean (± std)".
std::string fmt_mean_std(double mean, double stddev);

/// Formats a seconds-valued RunStats as "median (mean ±std)" — the median
/// leads because the default 3-rep protocol makes the mean noise-dominated.
std::string fmt_stats(const RunStats& stats);

/// Formats a byte count as MiB with 2 decimals.
std::string fmt_mib(std::size_t bytes);

}  // namespace cbm
