// Execution-plan types for the CBM product C = op(A)·B.
//
// Extracted from cbm_matrix.hpp so the empirical autotuner (src/tune) can
// describe, serialise, and compare plans without depending on the CbmMatrix
// implementation — cbm_core links the tuner, not the other way round. The
// names here are the serialisation vocabulary of the tuning cache
// (cbm-tune-v1) and of bench telemetry, so they are stable strings.
#pragma once

#include <optional>
#include <string_view>

#include "common/envknobs.hpp"
#include "common/types.hpp"
#include "common/vectorops.hpp"
#include "sparse/spmm.hpp"

namespace cbm {

/// Update-stage execution policy (§V-B).
enum class UpdateSchedule {
  kSequential,     ///< single-threaded topological sweep
  kBranchDynamic,  ///< OpenMP dynamic over branches (the paper's choice)
  kBranchStatic,   ///< OpenMP static over branches (ablation)
  kColumnSplit,    ///< every thread sweeps the whole tree over its own slice
                   ///< of B's columns — parallelism independent of the
                   ///< virtual root's fan-out (wins when the tree has few
                   ///< branches, where the paper's scheme has no work units)
  kTaskGraph,      ///< dependency-driven: subtree row blocks × column panels
                   ///< as tasks on cbm::exec, each depending only on its
                   ///< parent block — no level-wise barriers, parallelism
                   ///< from both the tree shape and the column dimension
};

/// How multiply() executes the two-stage product.
enum class MultiplyPath {
  kTwoStage,    ///< delta SpMM over all of C, then the tree update (§IV)
  kFusedTiled,  ///< column-tiled: both stages per tile while it is hot
};

/// Full execution plan for one C = op(A)·B product: which engine runs, and
/// the per-stage schedules the two-stage engine uses. The fused engine takes
/// only the tile width (its stage interleaving replaces both schedules).
struct MultiplySchedule {
  MultiplyPath path = MultiplyPath::kTwoStage;
  SpmmSchedule spmm = SpmmSchedule::kNnzBalanced;
  UpdateSchedule update = UpdateSchedule::kBranchDynamic;
  index_t tile_cols = 0;  ///< fused tile width; 0 = auto (CBM_TILE_COLS env
                          ///< override, else detected cache geometry)

  /// Two-stage plan with the given stage schedules (the historical default).
  static MultiplySchedule two_stage(
      UpdateSchedule update = UpdateSchedule::kBranchDynamic,
      SpmmSchedule spmm = SpmmSchedule::kNnzBalanced);

  /// Fused column-tiled plan; tile_cols 0 = auto.
  static MultiplySchedule fused(index_t tile_cols = 0);

  /// Plan described by a RuntimeConfig: unset fields keep the defaults
  /// above; unknown vocabulary throws (a mistyped knob must not silently
  /// benchmark the wrong engine). This is the programmatic twin of
  /// from_env() — build the config by hand and no environment is consulted.
  static MultiplySchedule from_config(const RuntimeConfig& config);

  /// Reads CBM_MULTIPLY_PATH (two_stage | fused), CBM_SPMM_SCHEDULE
  /// (row_static | row_dynamic | nnz_balanced), CBM_UPDATE_SCHEDULE
  /// (sequential | branch_dynamic | branch_static | column_split |
  /// task_graph) and CBM_TILE_COLS. Exactly
  /// `from_config(RuntimeConfig::from_env())` — RuntimeConfig is the single
  /// point that touches the environment.
  static MultiplySchedule from_env();
};

/// How much checking multiply() performs before running the engines.
enum class MultiplyValidate {
  kShapes,  ///< dimension/shape checks only (the historical behaviour)
  kFull,    ///< additionally re-audit the format invariants (Property 1,
            ///< arborescence shape, Eq. 2 reconstruction) via cbm::check —
            ///< expensive; for distrusted inputs (e.g. deserialised caches)
};

/// The consolidated option block for C = op(A)·B — one entry point instead
/// of the historical multiply / multiply(plan) / multiply_auto /
/// multiply_columns sprawl. Default-constructed options reproduce
/// `multiply(b, c)` exactly (two-stage plan, ambient SIMD, shape checks,
/// all columns).
struct MultiplyOptions {
  /// Execution plan. Engaged (the default): run exactly this plan.
  /// nullopt: resolve automatically — tuning cache / probe / analytic
  /// policy, the historical multiply_auto().
  std::optional<MultiplySchedule> plan = MultiplySchedule{};

  /// SIMD kernel tier for this product; nullopt = the ambient level
  /// (CBM_SIMD / SimdScope). Auto-resolution fills in the tuner's choice
  /// unless pinned here.
  std::optional<SimdLevel> simd;

  /// Validation level (see MultiplyValidate).
  MultiplyValidate validate = MultiplyValidate::kShapes;

  /// Column panel [col_begin, col_end) of B/C to compute; col_end = -1
  /// means all columns. A proper sub-range runs the sequential panel body
  /// (the historical multiply_columns) — disjoint panels may run
  /// concurrently.
  index_t col_begin = 0;
  index_t col_end = -1;

  /// Configuration for auto-resolution (tune mode, env plan fallback).
  /// nullptr = resolve from the process environment per call (the
  /// historical behaviour). Long-lived callers (cbm::serve) point this at
  /// a config resolved once at construction. Not owned; must outlive the
  /// call.
  const RuntimeConfig* runtime = nullptr;

  /// Options selecting automatic plan resolution (multiply_auto's policy).
  static MultiplyOptions auto_plan() {
    MultiplyOptions o;
    o.plan = std::nullopt;
    return o;
  }

  /// Options pinning an explicit plan.
  static MultiplyOptions with_plan(const MultiplySchedule& plan) {
    MultiplyOptions o;
    o.plan = plan;
    return o;
  }

  /// Options for a column panel under an explicit plan.
  static MultiplyOptions columns(index_t col_begin, index_t col_end,
                                 const MultiplySchedule& plan) {
    MultiplyOptions o;
    o.plan = plan;
    o.col_begin = col_begin;
    o.col_end = col_end;
    return o;
  }
};

/// Stable lower-case names — the serialisation vocabulary of the tuning
/// cache and of bench telemetry.
const char* multiply_path_name(MultiplyPath path);
const char* spmm_schedule_name(SpmmSchedule schedule);
const char* update_schedule_name(UpdateSchedule schedule);

/// Inverse of the *_name functions; unknown text throws CbmError naming the
/// offending value (a corrupt cache entry must not select a random engine).
MultiplyPath parse_multiply_path(std::string_view text);
SpmmSchedule parse_spmm_schedule(std::string_view text);
UpdateSchedule parse_update_schedule(std::string_view text);

}  // namespace cbm
