#include "gnn/adjacency_op.hpp"

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "sparse/spmm.hpp"

namespace cbm {

template <typename T>
void CbmAdjacency<T>::validate_env() const {
  if (const auto level = check::validate_level_from_env();
      level != check::ValidateLevel::kOff) {
    CBM_SPAN("adj.cbm.validate");
    check::enforce(check::validate(m_, {.level = level}));
  }
}

template <typename T>
void CsrAdjacency<T>::multiply(const DenseMatrix<T>& b,
                               DenseMatrix<T>& c) const {
  CBM_SPAN("adj.csr.multiply");
  CBM_COUNTER_ADD("adj.csr.multiply.calls", 1);
  csr_spmm(m_, b, c);
}

template <typename T>
void CbmAdjacency<T>::multiply(const DenseMatrix<T>& b,
                               DenseMatrix<T>& c) const {
  CBM_SPAN("adj.cbm.multiply");
  CBM_COUNTER_ADD("adj.cbm.multiply.calls", 1);
  m_.multiply(b, c, schedule_);  // dispatches two-stage or fused per plan
}

template class CsrAdjacency<float>;
template class CsrAdjacency<double>;
template class CbmAdjacency<float>;
template class CbmAdjacency<double>;

}  // namespace cbm
