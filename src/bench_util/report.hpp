// Machine-readable bench telemetry (the CBM_BENCH_JSON side channel).
//
// Every bench binary constructs one BenchReport next to its TablePrinter and
// records each measurement it prints. When CBM_BENCH_JSON=<path> is set the
// report writes a single JSON document on destruction — config, host info,
// per-measurement statistics (count/mean/std/min/max/median), and a snapshot
// of the cbm::obs metrics registry (metrics recording is switched on
// automatically so per-stage counters land in the document). Without the
// env var every call is a no-op, so benches pay nothing by default.
//
// The document layout is stable on purpose: BENCH_*.json trajectories diff
// it across PRs. See docs/observability.md.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "bench_util/env.hpp"
#include "common/stats.hpp"

namespace cbm {

/// Build/host facts that make pasted bench numbers self-describing.
struct HostInfo {
  std::string hostname;
  std::string compiler;    ///< e.g. "gcc 13.2"
  std::string build_type;  ///< "Release" (NDEBUG) or "Debug"
  bool openmp = false;
  int hardware_threads = 0;

  static HostInfo detect();
};

/// One named measurement with optional string labels (graph, alpha, ...).
struct BenchMeasurement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  RunStats stats;
};

class BenchReport {
 public:
  /// Reads CBM_BENCH_JSON; when set, enables cbm::obs metrics so the final
  /// document carries the per-stage counters of everything the bench ran.
  BenchReport(std::string bench_name, const BenchConfig& config);

  /// Writes the document (if enabled and not yet written).
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one measurement series. No-op when disabled.
  void add(std::string name, const RunStats& stats,
           std::vector<std::pair<std::string, std::string>> labels = {});

  /// Records a single scalar (ratios, byte counts, ...). No-op when disabled.
  void add_scalar(std::string name, double value,
                  std::vector<std::pair<std::string, std::string>> labels = {});

  /// Writes the JSON document now; later add() calls start a new pending
  /// document (normally the destructor is the only writer).
  void write();

 private:
  std::string bench_name_;
  BenchConfig config_;
  std::string path_;
  std::vector<BenchMeasurement> measurements_;
  bool written_ = false;
};

}  // namespace cbm
