// Tests for cbm::obs: the JSON writer, the metrics registry under OpenMP,
// scoped-span tracing (including emission from parallel regions), and the
// round-trip parseability of both export formats. A minimal recursive-descent
// JSON parser lives at the top so the round-trip checks don't depend on any
// external library.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "cbm/serialize.hpp"
#include "common/rng.hpp"
#include "dense/dense_matrix.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cbm {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (enough to validate our own exports).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) {
      ADD_FAILURE() << "missing key: " << key;
      static const JsonValue null_value;
      return null_value;
    }
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return object.count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    ok_ &= pos_ == text_.size();
    return v;
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    ok_ = false;
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    if (pos_ >= text_.size()) {
      ok_ = false;
      return v;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' && literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f' && literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (c == 'n' && literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return v;
    }
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      ok_ = false;
      return out;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Keep it simple: skip the 4 hex digits, emit '?'.
            pos_ += 4;
            c = '?';
            break;
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    if (!consume('"')) ok_ = false;
    return out;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return v;
    do {
      skip_ws();
      std::string key = parse_string();
      if (!consume(':')) {
        ok_ = false;
        return v;
      }
      v.object.emplace(std::move(key), parse_value());
    } while (consume(','));
    if (!consume('}')) ok_ = false;
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    if (!consume(']')) ok_ = false;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

JsonValue parse_json_or_fail(const std::string& text) {
  JsonParser parser(text);
  JsonValue v = parser.parse();
  EXPECT_TRUE(parser.ok()) << "unparseable JSON: " << text;
  return v;
}

// RAII guard: every test leaves tracing/metrics in the disabled, empty state.
struct ObsGuard {
  ObsGuard() { reset(); }
  ~ObsGuard() { reset(); }
  static void reset() {
    obs::disable_trace();
    obs::trace_reset();
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
  }
};

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, EscapesAndNesting) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.value("text", "a\"b\\c\nd\x01");
  w.value("num", 1.5);
  w.value("int", std::int64_t{-3});
  w.value("flag", true);
  w.begin_array("xs");
  w.element(std::int64_t{1});
  w.element("two");
  w.end_array();
  w.begin_object("inner");
  w.end_object();
  w.end_object();

  const JsonValue v = parse_json_or_fail(os.str());
  EXPECT_EQ(v.at("text").string, "a\"b\\c\nd?");  // \x01 parsed back as '?'
  EXPECT_DOUBLE_EQ(v.at("num").number, 1.5);
  EXPECT_DOUBLE_EQ(v.at("int").number, -3.0);
  EXPECT_TRUE(v.at("flag").boolean);
  ASSERT_EQ(v.at("xs").array.size(), 2u);
  EXPECT_EQ(v.at("xs").array[1].string, "two");
  EXPECT_EQ(v.at("inner").kind, JsonValue::Kind::kObject);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.value("nan", std::nan(""));
  w.end_object();
  const JsonValue v = parse_json_or_fail(os.str());
  EXPECT_EQ(v.at("nan").kind, JsonValue::Kind::kNull);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, DisabledCallsAreNoOps) {
  ObsGuard guard;
  ASSERT_FALSE(obs::metrics_enabled());
  obs::counter_add("test.disabled", 5);
  obs::gauge_set("test.disabled_gauge", 1.0);
  obs::timing_record("test.disabled_timing", 0.5);
  const auto snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled"), 0u);
  EXPECT_EQ(snap.gauges.count("test.disabled_gauge"), 0u);
  EXPECT_EQ(snap.timings.count("test.disabled_timing"), 0u);
}

TEST(Metrics, CountersGaugesTimings) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::counter_add("test.counter", 2);
  obs::counter_add("test.counter", 3);
  obs::gauge_set("test.gauge", 1.5);
  obs::gauge_set("test.gauge", 2.5);
  obs::timing_record("test.timing", 1e-6);
  obs::timing_record("test.timing", 3e-6);

  const auto snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counters.at("test.counter"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 2.5);
  const auto& t = snap.timings.at("test.timing");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.min, 1e-6);
  EXPECT_DOUBLE_EQ(t.max, 3e-6);
  EXPECT_NEAR(t.mean(), 2e-6, 1e-12);
}

TEST(Metrics, ConcurrentCountersInsideOmpParallel) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  constexpr int kIters = 20000;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) {
    obs::counter_add("test.omp_counter", 1);
  }
  const auto snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counters.at("test.omp_counter"), kIters);
}

TEST(Metrics, TimingQuantileIsOrderOfMagnitudeRight) {
  obs::TimingSummary t;
  for (int i = 0; i < 1000; ++i) t.add(1e-6);  // all ~2^10 ns
  const double p50 = t.quantile(0.5);
  EXPECT_GT(p50, 0.25e-6);
  EXPECT_LT(p50, 4e-6);
}

TEST(Metrics, TimingQuantileEdgeCases) {
  // Empty histogram: every quantile is 0 by definition.
  obs::TimingSummary empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  // Single sample: the min/max clamp collapses the bucket midpoint onto the
  // sample, so the estimate is exact at every q.
  obs::TimingSummary one;
  one.add(3.7e-5);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 3.7e-5);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 3.7e-5);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 3.7e-5);

  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(one.quantile(-1.0), 3.7e-5);
  EXPECT_DOUBLE_EQ(one.quantile(2.0), 3.7e-5);

  // Samples beyond the last bucket's lower edge (~39 h) saturate into it;
  // its geometric midpoint undershoots them, but the clamp keeps the
  // estimate inside the observed [min, max] instead of below it.
  obs::TimingSummary huge;
  const double kWeekSeconds = 7.0 * 24.0 * 3600.0;
  huge.add(kWeekSeconds);
  huge.add(2.0 * kWeekSeconds);
  EXPECT_GE(huge.quantile(0.5), kWeekSeconds);
  EXPECT_GE(huge.quantile(0.99), kWeekSeconds);
  EXPECT_LE(huge.quantile(0.99), 2.0 * kWeekSeconds);
}

TEST(Metrics, TimingMergeAddsHistograms) {
  obs::TimingSummary a, b;
  a.add(1e-6);
  b.add(1e-3);
  b.add(2e-3);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min, 1e-6);
  EXPECT_DOUBLE_EQ(a.max, 2e-3);
}

TEST(Metrics, JsonRoundTrip) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::counter_add("rt.counter", 7);
  obs::gauge_set("rt.gauge", 0.25);
  obs::timing_record("rt.timing", 5e-4);

  const std::string json = obs::metrics_json(obs::metrics_snapshot());
  const JsonValue v = parse_json_or_fail(json);
  EXPECT_DOUBLE_EQ(v.at("counters").at("rt.counter").number, 7.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("rt.gauge").number, 0.25);
  const auto& timing = v.at("timings").at("rt.timing");
  EXPECT_DOUBLE_EQ(timing.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(timing.at("min_seconds").number, 5e-4);
  EXPECT_TRUE(timing.has("p50_seconds"));
  EXPECT_TRUE(timing.has("p99_seconds"));
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Trace, DisabledSpanRecordsNothing) {
  ObsGuard guard;
  ASSERT_FALSE(obs::trace_enabled());
  { CBM_SPAN("test.should_not_appear"); }
  obs::enable_trace("");
  std::ostringstream os;
  obs::trace_write_to(os);
  EXPECT_EQ(os.str().find("test.should_not_appear"), std::string::npos);
}

TEST(Trace, SpansExportAsChromeTraceJson) {
  ObsGuard guard;
  obs::enable_trace("");
  {
    CBM_SPAN("test.outer");
    CBM_SPAN("test.inner");
  }
  obs::disable_trace();

  std::ostringstream os;
  obs::trace_write_to(os);
  const JsonValue doc = parse_json_or_fail(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& events = doc.at("traceEvents").array;
  ASSERT_GE(events.size(), 2u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* main_name = nullptr;
  for (const auto& e : events) {
    if (e.at("ph").string == "M") {
      // Thread metadata rides along so viewers show names, not bare tids.
      if (e.at("name").string == "thread_name" &&
          e.at("args").at("name").string == "main") {
        main_name = &e;
      }
      continue;
    }
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("cat").string, "cbm");
    if (e.at("name").string == "test.outer") outer = &e;
    if (e.at("name").string == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(main_name, nullptr);
  // Nesting: inner is contained in [outer.ts, outer.ts + outer.dur].
  const double outer_begin = outer->at("ts").number;
  const double outer_end = outer_begin + outer->at("dur").number;
  const double inner_begin = inner->at("ts").number;
  const double inner_end = inner_begin + inner->at("dur").number;
  EXPECT_GE(inner_begin, outer_begin);
  EXPECT_LE(inner_end, outer_end);
}

TEST(Trace, SpansFromOmpParallelRegion) {
  ObsGuard guard;
  obs::enable_trace("");
  constexpr int kIters = 64;
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) {
    CBM_SPAN("test.parallel_span");
  }
  obs::disable_trace();

  std::ostringstream os;
  obs::trace_write_to(os);
  const JsonValue doc = parse_json_or_fail(os.str());
  int found = 0;
  int worker_names = 0;
  for (const auto& e : doc.at("traceEvents").array) {
    found += e.at("name").string == "test.parallel_span";
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name") {
      worker_names +=
          e.at("args").at("name").string.rfind("omp-worker-", 0) == 0;
    }
  }
  EXPECT_EQ(found + static_cast<int>(obs::trace_dropped_events()), kIters);
  EXPECT_GT(found, 0);
#ifdef _OPENMP
  // Workers that first recorded inside the parallel region were named by
  // their OpenMP team rank (with >1 thread; a 1-thread runtime has none).
  if (omp_get_max_threads() > 1) EXPECT_GT(worker_names, 0);
#else
  (void)worker_names;
#endif
}

TEST(Trace, ResetDropsEvents) {
  ObsGuard guard;
  obs::enable_trace("");
  { CBM_SPAN("test.dropped_by_reset"); }
  obs::trace_reset();
  std::ostringstream os;
  obs::trace_write_to(os);
  EXPECT_EQ(os.str().find("test.dropped_by_reset"), std::string::npos);
  EXPECT_EQ(obs::trace_dropped_events(), 0u);
}

// ---------------------------------------------------------------------------
// Instrumented library code emits the documented span names.

TEST(Trace, CompressAndMultiplyEmitDocumentedSpans) {
  ObsGuard guard;
  obs::enable_trace("");
  obs::set_metrics_enabled(true);

  // Tiny dense-ish matrix so compression finds some sharing.
  std::vector<offset_t> indptr = {0, 3, 6, 9};
  std::vector<index_t> indices = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  std::vector<float> values(9, 1.0f);
  const CsrMatrix<float> a(3, 3, std::move(indptr), std::move(indices),
                           std::move(values));
  const auto m = CbmMatrix<float>::compress(a, {.alpha = 0});
  DenseMatrix<float> b(3, 2), c(3, 2);
  Rng rng(1);
  b.fill_uniform(rng);
  m.multiply(b, c);

  obs::disable_trace();
  std::ostringstream os;
  obs::trace_write_to(os);
  const JsonValue doc = parse_json_or_fail(os.str());
  std::map<std::string, int> names;
  for (const auto& e : doc.at("traceEvents").array) {
    ++names[e.at("name").string];
  }
  EXPECT_GE(names["cbm.compress"], 1);
  EXPECT_GE(names["cbm.compress.distance_graph"], 1);
  EXPECT_GE(names["cbm.compress.tree_solve"], 1);
  EXPECT_GE(names["cbm.compress.deltas"], 1);
  EXPECT_GE(names["cbm.multiply"], 1);
  EXPECT_GE(names["cbm.multiply_stage"], 1);
  EXPECT_GE(names["cbm.update_stage"], 1);

  const auto snap = obs::metrics_snapshot();
  EXPECT_GE(snap.counters.at("cbm.compress.calls"), 1);
  EXPECT_GE(snap.counters.at("cbm.multiply.calls"), 1);
  EXPECT_GE(snap.counters.at("cbm.update.calls"), 1);
}

TEST(Trace, SerializeRoundTripEmitsSpansAndCounters) {
  ObsGuard guard;
  obs::enable_trace("");
  obs::set_metrics_enabled(true);

  std::vector<offset_t> indptr = {0, 2, 4};
  std::vector<index_t> indices = {0, 1, 0, 1};
  std::vector<float> values(4, 1.0f);
  const CsrMatrix<float> a(2, 2, std::move(indptr), std::move(indices),
                           std::move(values));
  const auto m = CbmMatrix<float>::compress(a, {.alpha = 0});
  std::stringstream buf;
  save_cbm(buf, m);
  const auto loaded = load_cbm<float>(buf);
  EXPECT_EQ(loaded.rows(), m.rows());

  obs::disable_trace();
  std::ostringstream os;
  obs::trace_write_to(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("cbm.serialize.save"), std::string::npos);
  EXPECT_NE(trace.find("cbm.serialize.load"), std::string::npos);

  const auto snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counters.at("cbm.serialize.saves"), 1);
  EXPECT_EQ(snap.counters.at("cbm.serialize.loads"), 1);
  EXPECT_GT(snap.counters.at("cbm.serialize.saved_bytes"), 0);
}

}  // namespace
}  // namespace cbm
