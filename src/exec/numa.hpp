// NUMA topology detection and placement for the partitioned task-graph
// executor (docs/tuning.md §CBM_NUMA).
//
// Deliberately libnuma-free: topology comes from sysfs
// (/sys/devices/system/node/node*/cpulist) and placement uses plain
// sched_setaffinity plus the kernel's first-touch page policy — a part's
// scratch block is allocated (and therefore zero-filled, faulting its pages)
// while the allocating thread is pinned to the part's node, and in bind mode
// the part's tasks run pinned to the same node. Everything degrades to a
// no-op on single-node hosts, in containers that refuse affinity calls, and
// under CBM_NUMA=off (the default), so the same binary is correct anywhere.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/envknobs.hpp"

namespace cbm::exec {

/// The host's NUMA node layout: one entry per online node, ascending id,
/// each with the cpus it owns. Always at least one node (a host with no
/// sysfs node tree reports a single node 0 owning no enumerated cpus).
struct NumaTopology {
  struct Node {
    int id = 0;
    std::vector<int> cpus;  ///< ascending cpu ids
  };
  std::vector<Node> nodes;

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes.size());
  }
  /// True when placement can matter at all (≥ 2 nodes).
  [[nodiscard]] bool multi_node() const { return nodes.size() > 1; }

  /// The running machine's topology, detected once and cached.
  static const NumaTopology& host();

  /// Parses a sysfs-style node tree rooted at `root` (containing node0/,
  /// node1/, … each with a `cpulist` file). Exposed so tests can exercise
  /// parsing against a faked root, as CacheInfo does.
  static NumaTopology from_sysfs(const std::string& root);
};

/// The node the given part index should live on under `mode`: round-robin
/// over the nodes for interleave/bind, -1 (no preference) for kOff or a
/// single-node topology. A -1 makes every downstream placement a no-op.
int placement_node(const NumaTopology& topology, NumaMode mode,
                   std::size_t part_index);

/// Pins the calling thread to one node's cpus for the guard's lifetime and
/// restores the previous mask on destruction. Inactive — a no-op — when
/// node < 0, the topology has one node, the node owns no cpus, or the
/// kernel/container refuses the affinity calls; active() reports which.
class NodeAffinityGuard {
 public:
  NodeAffinityGuard(const NumaTopology& topology, int node);
  ~NodeAffinityGuard();
  NodeAffinityGuard(const NodeAffinityGuard&) = delete;
  NodeAffinityGuard& operator=(const NodeAffinityGuard&) = delete;

  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
  std::vector<unsigned char> saved_;  ///< previous cpu_set_t, raw bytes
};

}  // namespace cbm::exec
