#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "cbm/mutate.hpp"    // mutation_staleness (header-inline)
#include "cbm/spmm_cbm.hpp"  // cbm_kind_row_scaled (constexpr, header-only)
#include "common/error.hpp"
#include "obs/json.hpp"

namespace cbm::check {

const char* to_string(ValidateLevel level) {
  switch (level) {
    case ValidateLevel::kOff:
      return "off";
    case ValidateLevel::kBuild:
      return "build";
    case ValidateLevel::kFull:
      return "full";
  }
  return "?";
}

ValidateLevel validate_level_from_env() {
  const char* v = std::getenv("CBM_VALIDATE");
  if (v == nullptr || *v == '\0') return ValidateLevel::kOff;
  const std::string s(v);
  if (s == "off") return ValidateLevel::kOff;
  if (s == "build") return ValidateLevel::kBuild;
  if (s == "full") return ValidateLevel::kFull;
  throw CbmError("CBM_VALIDATE: unknown value '" + s +
                 "' (expected off | build | full)");
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "cbm::check passed " << rules_checked << " rules at "
       << to_string(level);
    return os.str();
  }
  os << "cbm::check found " << issues.size() << " issue(s) at "
     << to_string(level) << "; first: [" << issues.front().rule << "] "
     << issues.front().detail;
  return os.str();
}

std::string CheckReport::to_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.value("schema", "cbm-check-v1");
  w.value("level", to_string(level));
  w.value("ok", ok());
  w.value("rules_checked", rules_checked);
  w.value("total_deltas", total_deltas);
  w.value("reconstructed_nnz", reconstructed_nnz);
  w.begin_array("issues");
  for (const CheckIssue& issue : issues) {
    w.begin_object();
    w.value("rule", issue.rule);
    w.value("detail", issue.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

void enforce(const CheckReport& report) {
  if (!report.ok()) throw CbmError(report.summary());
}

namespace {

/// Collects issues with a per-rule cap (a corrupted matrix breaks one rule
/// everywhere; the first few occurrences locate it, the rest only bloat).
class Reporter {
 public:
  explicit Reporter(const ValidateOptions& options, CheckReport& report)
      : cap_(options.max_issues_per_rule), report_(report) {}

  /// Declares that a rule ran (whether or not it found anything).
  void rule_checked() { ++report_.rules_checked; }

  void fail(const char* rule, std::string detail) {
    int& count = per_rule_[rule];
    ++count;
    if (count == cap_ + 1) {
      report_.issues.push_back({rule, "further occurrences truncated"});
      return;
    }
    if (count > cap_) return;
    report_.issues.push_back({rule, std::move(detail)});
  }

  [[nodiscard]] bool rule_failed(const char* rule) const {
    const auto it = per_rule_.find(rule);
    return it != per_rule_.end() && it->second > 0;
  }

 private:
  int cap_;
  CheckReport& report_;
  std::unordered_map<std::string, int> per_rule_;
};

template <typename... Parts>
std::string cat(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Structural rules: tree shape, topological order, branch decomposition,
/// diagonal constraints, delta-row ordering. O(n + nnz(A')).
template <typename T>
void check_structure(const CompressionTree& tree, CbmKind kind,
                     std::span<const T> diag, const CsrMatrix<T>& delta,
                     Reporter& rep) {
  const index_t n = tree.num_rows();
  const index_t root = tree.virtual_root();

  rep.rule_checked();
  if (n != delta.rows()) {
    rep.fail("tree-delta-shape",
             cat("tree has ", n, " rows, delta matrix ", delta.rows()));
  }

  // Arborescence shape: every node has exactly one parent (the parent array
  // gives that by construction), each parent is a valid row or the virtual
  // root, and no self-loops.
  rep.rule_checked();
  index_t compressed = 0;
  for (index_t x = 0; x < n; ++x) {
    const index_t p = tree.parent(x);
    if (p < 0 || p > root || p == x) {
      rep.fail("parent-range", cat("row ", x, " has parent ", p,
                                   " (valid: 0..", root, ", != self)"));
    } else if (p != root) {
      ++compressed;
    }
  }
  rep.rule_checked();
  if (compressed != tree.num_compressed_rows()) {
    rep.fail("compressed-count",
             cat("tree reports ", tree.num_compressed_rows(),
                 " compressed rows, parent array has ", compressed));
  }

  // Topological order: a permutation of the rows with every real parent
  // before its child. Together with parent-range this proves acyclicity and
  // reachability from the virtual root (induction down the order).
  rep.rule_checked();
  const auto topo = tree.topological_order();
  std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
  if (static_cast<index_t>(topo.size()) != n) {
    rep.fail("topological-order", cat("order has ", topo.size(),
                                      " entries for ", n, " rows"));
  } else {
    for (index_t i = 0; i < n; ++i) {
      const index_t x = topo[i];
      if (x < 0 || x >= n) {
        rep.fail("topological-order", cat("entry ", i, " is ", x));
      } else if (pos[x] != -1) {
        rep.fail("topological-order", cat("row ", x, " appears twice"));
      } else {
        pos[x] = i;
      }
    }
    for (index_t x = 0; x < n && !rep.rule_failed("topological-order"); ++x) {
      const index_t p = tree.parent(x);
      if (p != root && p >= 0 && p < n && pos[p] > pos[x]) {
        rep.fail("topological-order",
                 cat("row ", x, " precedes its parent ", p));
      }
    }
  }

  // Branch decomposition: the branches partition the rows, each starts at a
  // child of the virtual root, and within a branch parents come first.
  rep.rule_checked();
  const auto& branches = tree.branches();
  if (tree.root_out_degree() != static_cast<index_t>(branches.size())) {
    rep.fail("branch-partition",
             cat("root out-degree ", tree.root_out_degree(), " but ",
                 branches.size(), " branches"));
  }
  std::vector<index_t> branch_id(static_cast<std::size_t>(n), -1);
  std::vector<index_t> branch_pos(static_cast<std::size_t>(n), -1);
  for (std::size_t b = 0; b < branches.size(); ++b) {
    const auto& rows = branches[b];
    if (rows.empty()) {
      rep.fail("branch-partition", cat("branch ", b, " is empty"));
      continue;
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const index_t r = rows[i];
      if (r < 0 || r >= n) {
        rep.fail("branch-partition", cat("branch ", b, " holds row ", r));
        continue;
      }
      if (branch_id[r] != -1) {
        rep.fail("branch-partition",
                 cat("row ", r, " appears in branches ", branch_id[r],
                     " and ", b));
        continue;
      }
      branch_id[r] = static_cast<index_t>(b);
      branch_pos[r] = static_cast<index_t>(i);
      const index_t p = tree.parent(r);
      if (i == 0) {
        if (p != root) {
          rep.fail("branch-partition",
                   cat("branch ", b, " head ", r, " has non-root parent ", p));
        }
      } else if (p < 0 || p >= n || branch_id[p] != static_cast<index_t>(b) ||
                 branch_pos[p] >= static_cast<index_t>(i)) {
        rep.fail("branch-partition",
                 cat("row ", r, " in branch ", b,
                     " has parent ", p, " outside/after it"));
      }
    }
  }
  for (index_t x = 0; x < n; ++x) {
    if (branch_id[x] == -1) {
      rep.fail("branch-partition", cat("row ", x, " is in no branch"));
    }
  }

  // Diagonal constraints per kind (Eq. 6 divides by the update diagonal).
  rep.rule_checked();
  if (cbm_kind_row_scaled(kind)) {
    if (diag.size() != static_cast<std::size_t>(n)) {
      rep.fail("diagonal", cat("row-scaled kind with diagonal of length ",
                               diag.size(), " for ", n, " rows"));
    } else {
      for (index_t x = 0; x < n; ++x) {
        if (diag[x] == T{0}) {
          rep.fail("diagonal", cat("diagonal entry ", x, " is zero"));
        }
      }
    }
  } else if (!diag.empty()) {
    rep.fail("diagonal",
             cat("kind stores no diagonal but one of length ", diag.size(),
                 " is present"));
  }

  // The CBM kernels' linear merges rely on sorted, duplicate-free delta rows.
  rep.rule_checked();
  if (!delta.has_sorted_unique_rows()) {
    rep.fail("delta-rows-sorted",
             "delta matrix has an unsorted or duplicated column index");
  }
}

/// Reconstruction sweep (Equation 2 down the tree): classifies every delta
/// against the parent's reconstructed row — a matching column is a removal
/// and must carry the exact negated value; a new column is an insertion.
/// Fills `rows_data` with the reconstruction (delta space: row scaling NOT
/// applied) and returns its nnz. Tolerates a structurally broken tree by
/// skipping rows whose parent was never produced.
template <typename T>
std::int64_t check_reconstruction(
    const CompressionTree& tree, CbmKind kind, const CsrMatrix<T>& delta,
    std::vector<std::vector<std::pair<index_t, T>>>& rows_data,
    Reporter& rep) {
  const index_t n = tree.num_rows();
  const index_t root = tree.virtual_root();
  rows_data.assign(static_cast<std::size_t>(n), {});
  std::vector<bool> produced(static_cast<std::size_t>(n), false);
  std::int64_t nnz = 0;
  rep.rule_checked();
  if (n != delta.rows()) return -1;  // reported by tree-delta-shape already

  std::vector<std::pair<index_t, T>> merged;
  for (const index_t x : tree.topological_order()) {
    if (x < 0 || x >= n) continue;  // reported by topological-order
    const auto cols = delta.row_indices(x);
    const auto vals = delta.row_values(x);
    const index_t p = tree.parent(x);
    if (p == root) {
      auto& row = rows_data[x];
      row.reserve(cols.size());
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (kind == CbmKind::kPlain && vals[k] != T{1}) {
          rep.fail("reconstruction",
                   cat("root row ", x, " col ", cols[k], " has delta ",
                       vals[k], " (want +1)"));
        }
        row.emplace_back(cols[k], vals[k]);
      }
      produced[x] = true;
      nnz += static_cast<std::int64_t>(row.size());
      continue;
    }
    if (p < 0 || p >= n || !produced[p]) continue;
    const auto& parent_row = rows_data[p];
    merged.clear();
    merged.reserve(parent_row.size() + cols.size());
    std::size_t i = 0, k = 0;
    while (i < parent_row.size() || k < cols.size()) {
      if (k == cols.size() ||
          (i < parent_row.size() && parent_row[i].first < cols[k])) {
        merged.push_back(parent_row[i++]);  // inherited unchanged
      } else if (i == parent_row.size() ||
                 cols[k] < parent_row[i].first) {
        // Insertion: a column the parent lacks.
        if (kind == CbmKind::kPlain && vals[k] != T{1}) {
          rep.fail("reconstruction",
                   cat("row ", x, " col ", cols[k], " inserts with delta ",
                       vals[k], " (want +1)"));
        }
        merged.emplace_back(cols[k], vals[k]);
        ++k;
      } else {
        // Removal: must cancel the inherited value exactly (both sides are
        // ±scale[col] by construction, so bitwise negation is the contract).
        if (vals[k] != -parent_row[i].second) {
          rep.fail("reconstruction",
                   cat("row ", x, " col ", cols[k], " removal delta ",
                       vals[k], " does not negate parent value ",
                       parent_row[i].second));
        }
        ++i;
        ++k;
      }
    }
    rows_data[x] = merged;
    produced[x] = true;
    nnz += static_cast<std::int64_t>(merged.size());
  }
  return nnz;
}

/// Shared body of validate_parts / validate_against; `source` may be null.
template <typename T>
CheckReport validate_impl(const CompressionTree& tree, CbmKind kind,
                          std::span<const T> diag, const CsrMatrix<T>& delta,
                          const CsrMatrix<T>* source,
                          std::span<const T> column_scale,
                          const ValidateOptions& options) {
  CheckReport report;
  report.level = options.level;
  report.total_deltas = delta.nnz();
  if (options.level == ValidateLevel::kOff) return report;
  Reporter rep(options, report);

  check_structure(tree, kind, diag, delta, rep);

  if (source != nullptr) {
    rep.rule_checked();
    if (source->rows() != delta.rows() || source->cols() != delta.cols()) {
      rep.fail("source-shape",
               cat("source is ", source->rows(), "x", source->cols(),
                   ", delta ", delta.rows(), "x", delta.cols()));
    }
    // Property 1: total deltas never exceed nnz(A). The source's nnz is at
    // hand, so this is free even at kBuild.
    rep.rule_checked();
    if (delta.nnz() > source->nnz()) {
      rep.fail("property-1", cat("nnz(A') = ", delta.nnz(), " > nnz(A) = ",
                                 source->nnz()));
    }
    // α admissibility (§V-C, sign-corrected — DESIGN.md §1.3): every tree
    // edge must save strictly more than α deltas over direct storage.
    if (options.alpha >= 0) {
      rep.rule_checked();
      const index_t n = std::min(tree.num_rows(), source->rows());
      for (index_t x = 0; x < n; ++x) {
        if (tree.parent(x) == tree.virtual_root()) continue;
        const auto deltas = static_cast<std::int64_t>(delta.row_nnz(x));
        const auto direct = static_cast<std::int64_t>(source->row_nnz(x));
        if (deltas + options.alpha >= direct) {
          rep.fail("alpha-admissible",
                   cat("row ", x, ": |delta| = ", deltas, " + alpha = ",
                       options.alpha, " >= nnz(A_x) = ", direct));
        }
      }
    }
  }

  if (options.level != ValidateLevel::kFull) return report;

  std::vector<std::vector<std::pair<index_t, T>>> rows_data;
  report.reconstructed_nnz =
      check_reconstruction(tree, kind, delta, rows_data, rep);

  // Property 1 without the source: against the reconstruction.
  if (source == nullptr && report.reconstructed_nnz >= 0) {
    rep.rule_checked();
    if (report.total_deltas > report.reconstructed_nnz) {
      rep.fail("property-1",
               cat("nnz(A') = ", report.total_deltas,
                   " > reconstructed nnz = ", report.reconstructed_nnz));
    }
  }

  // Source equality: the reconstruction must be exactly the source pattern
  // with `column_scale` folded in (row scaling lives in the update stage and
  // is deliberately absent from delta space).
  if (source != nullptr && !rep.rule_failed("source-shape") &&
      report.reconstructed_nnz >= 0) {
    rep.rule_checked();
    const index_t n = std::min(tree.num_rows(), source->rows());
    for (index_t x = 0; x < n; ++x) {
      const auto& got = rows_data[static_cast<std::size_t>(x)];
      const auto cols = source->row_indices(x);
      if (got.size() != cols.size()) {
        rep.fail("source-equal",
                 cat("row ", x, " reconstructs ", got.size(),
                     " entries, source has ", cols.size()));
        continue;
      }
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (got[k].first != cols[k]) {
          rep.fail("source-equal",
                   cat("row ", x, " entry ", k, " reconstructs col ",
                       got[k].first, ", source has ", cols[k]));
          break;
        }
        const T want = column_scale.empty() ? T{1} : column_scale[cols[k]];
        if (got[k].second != want) {
          rep.fail("source-equal",
                   cat("row ", x, " col ", cols[k], " reconstructs ",
                       got[k].second, ", want ", want));
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace

template <typename T>
CheckReport validate_parts(const CompressionTree& tree, CbmKind kind,
                           std::span<const T> diag, const CsrMatrix<T>& delta,
                           const ValidateOptions& options) {
  return validate_impl<T>(tree, kind, diag, delta, /*source=*/nullptr,
                          /*column_scale=*/{}, options);
}

template <typename T>
CheckReport validate_against(const CompressionTree& tree, CbmKind kind,
                             std::span<const T> diag,
                             const CsrMatrix<T>& delta,
                             const CsrMatrix<T>& source,
                             std::span<const T> column_scale,
                             const ValidateOptions& options) {
  return validate_impl<T>(tree, kind, diag, delta, &source, column_scale,
                          options);
}

template <typename T>
CheckReport validate_mutation(const CbmMatrix<T>& m,
                              const CsrMatrix<T>* expected,
                              const ValidateOptions& options) {
  ValidateOptions opts = options;
  opts.level = ValidateLevel::kFull;  // the reconstruction is the point
  CheckReport report;
  report.level = opts.level;
  report.total_deltas = m.delta_matrix().nnz();
  Reporter rep(opts, report);

  check_structure(m.tree(), m.kind(), m.diagonal(), m.delta_matrix(), rep);
  std::vector<std::vector<std::pair<index_t, T>>> rows_data;
  report.reconstructed_nnz =
      check_reconstruction(m.tree(), m.kind(), m.delta_matrix(), rows_data, rep);
  if (report.reconstructed_nnz < 0) return report;  // shape already reported

  const MutationBookkeeping& state = m.mutation_state();
  const index_t n = m.rows();
  // A from_parts-born matrix initialises its bookkeeping lazily on the first
  // mutation; until then the tracked counts are meaningless zeros.
  const bool tracked = state.epoch > 0 || state.baseline_nnz != 0 ||
                       state.baseline_deltas != 0;

  if (tracked) {
    rep.rule_checked();
    if (state.source_nnz != report.reconstructed_nnz) {
      rep.fail("mutation-source-nnz",
               cat("bookkeeping tracks nnz(A) = ", state.source_nnz,
                   ", reconstruction has ", report.reconstructed_nnz));
    }
    // Property 1 against the tracked count: drift between the delta matrix
    // and the bookkeeping shows up here even when both are self-consistent.
    rep.rule_checked();
    if (report.total_deltas > state.source_nnz) {
      rep.fail("mutation-property-1",
               cat("nnz(A') = ", report.total_deltas,
                   " > tracked nnz(A) = ", state.source_nnz));
    }
  }

  rep.rule_checked();
  if (state.reparented_rows < 0 || state.reparented_rows > n) {
    rep.fail("mutation-reparented",
             cat("reparented_rows = ", state.reparented_rows,
                 " outside [0, ", n, "]"));
  } else if (state.epoch == 0 && state.reparented_rows != 0) {
    rep.fail("mutation-reparented",
             cat("epoch 0 but reparented_rows = ", state.reparented_rows));
  }

  // Staleness: the published value (the formula over the tracked state and
  // the live delta count — exactly what staleness() returns) must agree
  // with the formula evaluated on the *reconstructed* source nnz. A
  // divergence means the incremental source_nnz tracking drifted in a way
  // the metric actually feels.
  rep.rule_checked();
  const double got = mutation_staleness(state, n, report.total_deltas);
  MutationBookkeeping truth = state;
  truth.source_nnz = report.reconstructed_nnz;
  const double want = mutation_staleness(truth, n, report.total_deltas);
  if (got < 0.0 || got > 1.0 || std::abs(got - want) > 1e-12) {
    rep.fail("mutation-staleness",
             cat("staleness() = ", got,
                 ", recomputed from the reconstruction = ", want));
  }

  // α admissibility from the reconstruction alone: mutation repair must
  // leave every surviving tree edge strictly profitable at the matrix's α.
  rep.rule_checked();
  for (index_t x = 0; x < n; ++x) {
    if (m.tree().parent(x) == m.tree().virtual_root()) continue;
    const auto deltas = static_cast<std::int64_t>(m.delta_matrix().row_nnz(x));
    const auto direct =
        static_cast<std::int64_t>(rows_data[static_cast<std::size_t>(x)].size());
    if (deltas + m.alpha() >= direct) {
      rep.fail("mutation-alpha-admissible",
               cat("row ", x, ": |delta| = ", deltas, " + alpha = ", m.alpha(),
                   " >= nnz(A_x) = ", direct));
    }
  }

  if (expected != nullptr) {
    rep.rule_checked();
    if (expected->rows() != n || expected->cols() != m.cols()) {
      rep.fail("mutation-expected",
               cat("expected is ", expected->rows(), "x", expected->cols(),
                   ", matrix ", n, "x", m.cols()));
    } else {
      for (index_t x = 0; x < n; ++x) {
        const auto& got_row = rows_data[static_cast<std::size_t>(x)];
        const auto cols = expected->row_indices(x);
        if (got_row.size() != cols.size()) {
          rep.fail("mutation-expected",
                   cat("row ", x, " reconstructs ", got_row.size(),
                       " entries, expected ", cols.size()));
          continue;
        }
        for (std::size_t k = 0; k < cols.size(); ++k) {
          if (got_row[k].first != cols[k]) {
            rep.fail("mutation-expected",
                     cat("row ", x, " entry ", k, " reconstructs col ",
                         got_row[k].first, ", expected ", cols[k]));
            break;
          }
        }
      }
    }
  }
  return report;
}

template CheckReport validate_parts<float>(const CompressionTree&, CbmKind,
                                           std::span<const float>,
                                           const CsrMatrix<float>&,
                                           const ValidateOptions&);
template CheckReport validate_parts<double>(const CompressionTree&, CbmKind,
                                            std::span<const double>,
                                            const CsrMatrix<double>&,
                                            const ValidateOptions&);
template CheckReport validate_against<float>(const CompressionTree&, CbmKind,
                                             std::span<const float>,
                                             const CsrMatrix<float>&,
                                             const CsrMatrix<float>&,
                                             std::span<const float>,
                                             const ValidateOptions&);
template CheckReport validate_against<double>(const CompressionTree&, CbmKind,
                                              std::span<const double>,
                                              const CsrMatrix<double>&,
                                              const CsrMatrix<double>&,
                                              std::span<const double>,
                                              const ValidateOptions&);
template CheckReport validate_mutation<float>(const CbmMatrix<float>&,
                                              const CsrMatrix<float>*,
                                              const ValidateOptions&);
template CheckReport validate_mutation<double>(const CbmMatrix<double>&,
                                               const CsrMatrix<double>*,
                                               const ValidateOptions&);

}  // namespace cbm::check
