// SNAP edge-list I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.hpp"
#include "sparse/io_edgelist.hpp"

namespace cbm {
namespace {

TEST(EdgeList, ReadsPairsAndSkipsComments) {
  std::istringstream in(
      "# SNAP header\n"
      "% another comment style\n"
      "0\t1\n"
      "2 3\n"
      "\n"
      "1 2\n");
  const auto coo = read_edge_list(in);
  EXPECT_EQ(coo.rows, 4);
  EXPECT_EQ(coo.nnz(), 3u);
  const Graph g = Graph::from_coo_pattern(coo);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(EdgeList, ForcedDimension) {
  std::istringstream in("0 1\n");
  const auto coo = read_edge_list(in, 10);
  EXPECT_EQ(coo.rows, 10);
  EXPECT_EQ(coo.cols, 10);
}

TEST(EdgeList, ForcedDimensionTooSmallThrows) {
  std::istringstream in("0 7\n");
  EXPECT_THROW(read_edge_list(in, 5), CbmError);
}

TEST(EdgeList, MalformedLineThrows) {
  std::istringstream in("0 not-a-number\n");
  EXPECT_THROW(read_edge_list(in), CbmError);
}

TEST(EdgeList, NegativeIdThrows) {
  std::istringstream in("-1 2\n");
  EXPECT_THROW(read_edge_list(in), CbmError);
}

TEST(EdgeList, WriteReadRoundTrip) {
  CooMatrix<real_t> coo;
  coo.rows = 5;
  coo.cols = 5;
  coo.push(0, 3, 1.0f);
  coo.push(4, 1, 1.0f);
  std::stringstream buf;
  write_edge_list(buf, coo);
  const auto back = read_edge_list(buf, 5);
  ASSERT_EQ(back.nnz(), 2u);
  EXPECT_EQ(back.row_idx[0], 0);
  EXPECT_EQ(back.col_idx[0], 3);
  EXPECT_EQ(back.row_idx[1], 4);
  EXPECT_EQ(back.col_idx[1], 1);
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/graph.txt"), CbmError);
}

}  // namespace
}  // namespace cbm
