// CbmMatrix — the Compressed Binary Matrix format (the paper's primary
// contribution).
//
// A CbmMatrix represents one of
//   A        (kPlain):        a binary matrix,
//   A·D      (kColumnScaled): columns scaled by a diagonal, and
//   D·A·D    (kSymScaled):    the GCN-normalised form,
// as a compression tree plus a CSR delta matrix (§III, §V-A). multiply()
// computes C = op(A)·B in the two-stage multiply+update scheme of §IV/§V.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cbm/distance_graph.hpp"
#include "cbm/multiply_plan.hpp"
#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"
#include "tree/compression_tree.hpp"
#include "tune/tune.hpp"

namespace cbm {

template <typename T>
struct FusedRowSchedule;  // cbm/spmm_cbm_fused.hpp

/// Which factorisation this CBM matrix represents.
enum class CbmKind {
  kPlain,         ///< A
  kColumnScaled,  ///< A·D  (D folded into the delta values; D not stored)
  kSymScaled,     ///< D·A·D (D folded into values + kept for the update)
  kTwoSided,      ///< D₁·A·D₂ (D₂ folded into values, D₁ kept — the §V-A
                  ///< "easily extended" generalisation)
};

/// Compression-tree solver choice.
enum class TreeAlgorithm {
  kMca,  ///< Chu–Liu/Edmonds on the α-pruned directed graph (default; for
         ///< α = 0 it matches the MST cost — see tests)
  kMst,  ///< Kruskal on the full undirected distance graph, the verbatim
         ///< §III construction; ignores alpha
};

// UpdateSchedule, MultiplyPath, and MultiplySchedule live in
// cbm/multiply_plan.hpp (included above) so the autotuner can reason about
// plans without this header.

/// Options controlling compression.
struct CbmOptions {
  int alpha = 0;                       ///< §V-C pruning threshold
  TreeAlgorithm algorithm = TreeAlgorithm::kMca;
  index_t max_candidates_per_row = 0;  ///< 0 = unlimited (see DistanceGraph)
};

/// One edge mutation: toggle entry (row, col) of the binary pattern.
/// Batches of these drive insert_edges / remove_edges (cbm/mutate.hpp).
struct EdgeUpdate {
  index_t row = 0;
  index_t col = 0;
};

/// Outcome of one mutation batch (insert_edges / remove_edges).
struct MutationResult {
  std::int64_t inserted = 0;        ///< edges newly present
  std::int64_t removed = 0;         ///< edges actually deleted
  std::int64_t duplicate_inserts = 0;  ///< inserts of already-present edges
  std::int64_t noop_removes = 0;    ///< removes of absent edges
  index_t touched_rows = 0;         ///< rows whose delta storage changed
  index_t reparented_rows = 0;      ///< rows re-attached to the virtual root
  std::int64_t delta_nnz_change = 0;  ///< nnz(A') after − before
  bool tree_changed = false;        ///< any re-parenting happened
};

/// Incremental-maintenance bookkeeping, kept by CbmMatrix across mutation
/// batches and cross-checked by cbm::check::validate_mutation. Baselines are
/// captured at the last full compression; `source_nnz` tracks nnz(op(A))
/// through mutations so staleness() never reconstructs the matrix.
struct MutationBookkeeping {
  std::uint64_t epoch = 0;          ///< mutation batches since construction
  index_t reparented_rows = 0;      ///< cumulative re-parents since compress
  std::int64_t baseline_nnz = 0;    ///< nnz(A) at the last full compress
  std::int64_t baseline_deltas = 0; ///< nnz(A') at the last full compress
  std::int64_t source_nnz = 0;      ///< current nnz(A), tracked incrementally
};

/// Construction statistics (the paper's Table II columns, plus the
/// per-phase split that the stage-level profiling exposes).
struct CbmStats {
  double build_seconds = 0.0;
  double distance_graph_seconds = 0.0;  ///< candidate-edge enumeration
  double tree_solve_seconds = 0.0;      ///< MST/MCA solve + rooting
  double delta_seconds = 0.0;           ///< delta-matrix extraction
  std::size_t candidate_edges = 0;   ///< admitted distance-graph edges
  std::int64_t tree_weight = 0;      ///< MST/MCA cost = total delta count
  std::int64_t total_deltas = 0;     ///< nnz(A')
  std::int64_t source_nnz = 0;       ///< nnz(A)
  index_t root_out_degree = 0;       ///< update-stage parallelism
  index_t max_depth = 0;
  std::size_t bytes = 0;             ///< S_CBM
};

template <typename T>
class CbmMatrix {
 public:
  CbmMatrix() = default;

  /// Compresses a binary matrix A (kPlain).
  static CbmMatrix compress(const CsrMatrix<T>& a,
                            const CbmOptions& options = {},
                            CbmStats* stats = nullptr);

  /// Compresses A·D or D·A·D: `a` must be binary, `diag` holds the diagonal
  /// of D. `kind` selects kColumnScaled or kSymScaled.
  static CbmMatrix compress_scaled(const CsrMatrix<T>& a,
                                   std::span<const T> diag, CbmKind kind,
                                   const CbmOptions& options = {},
                                   CbmStats* stats = nullptr);

  /// Compresses D₁·A·D₂ with distinct diagonals (kTwoSided). D₂ is folded
  /// into the delta values; D₁ must stay resident for the update stage and
  /// must be free of zeros (Eq. 6 divides by it).
  static CbmMatrix compress_two_sided(const CsrMatrix<T>& a,
                                      std::span<const T> left_diag,
                                      std::span<const T> right_diag,
                                      const CbmOptions& options = {},
                                      CbmStats* stats = nullptr);

  /// Reassembles a CbmMatrix from its stored parts (deserialisation,
  /// partitioned construction). Validates the same invariants compression
  /// guarantees.
  static CbmMatrix from_parts(CbmKind kind, CompressionTree tree,
                              CsrMatrix<T> delta, std::vector<T> diag);

  /// C = op(A) · B — the consolidated entry point. C must be pre-shaped
  /// (rows() × B.cols()); its previous content is overwritten. No
  /// allocations happen on the hot path (Property 3): the multiply stage
  /// writes C directly and the update stage fixes it up in place.
  ///
  /// `options` carries everything the historical entry-point sprawl spread
  /// over four signatures: an explicit plan (default: the two-stage engine)
  /// or automatic resolution (`MultiplyOptions::auto_plan()` — tuning
  /// cache / probe / analytic policy), the SIMD tier, the validation
  /// level, and an optional column panel. See multiply_plan.hpp.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                const MultiplyOptions& options = {}) const;

  /// Forwarding overload (docs-deprecated; prefer MultiplyOptions):
  /// two-stage plan with the given update schedule.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                UpdateSchedule schedule) const;

  /// Forwarding overload (docs-deprecated; prefer MultiplyOptions): run
  /// exactly this execution plan (engine + per-stage schedules).
  /// MultiplySchedule::fused() selects the column-tiled engine. Every plan
  /// produces identical results.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                const MultiplySchedule& schedule) const;

  /// Sequential C = op(A)·B restricted to the columns [col0, col1) of B/C —
  /// the task body the partitioned task-graph executor schedules. Disjoint
  /// panels are independent (no CBM stage mixes columns), so concurrent
  /// calls on disjoint ranges race nowhere. Only the plan's path and
  /// tile_cols matter here: each panel is one sequential unit, so the
  /// per-stage parallel schedules do not apply.
  void multiply_columns(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                        index_t col0, index_t col1,
                        const MultiplySchedule& schedule) const;

  /// Resolves the execution plan automatic mode will run: the empirical
  /// autotuner first (per `config.tune_mode` — cached winner, or probing
  /// candidate plans with short timed multiplies into `c`, so no probe
  /// work is wasted), then the analytic policy (the config's plan fields
  /// with the LLC-share fused tiling) when tuning is off or unavailable.
  /// The returned decision carries provenance (tuned vs analytic, cache
  /// hit) for telemetry.
  tune::PlanDecision resolve_plan(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                                  const RuntimeConfig& config) const;

  /// resolve_plan against the ambient environment
  /// (`RuntimeConfig::from_env()`).
  tune::PlanDecision resolve_plan(const DenseMatrix<T>& b,
                                  DenseMatrix<T>& c) const;

  /// Forwarding overload (docs-deprecated; prefer
  /// `multiply(b, c, MultiplyOptions::auto_plan())`): C = op(A) · B under
  /// resolve_plan()'s choice, including its SIMD kernel tier. The first
  /// call for a new shape may probe (see CBM_TUNE); later calls reuse the
  /// decision from the tuning cache.
  void multiply_auto(const DenseMatrix<T>& b, DenseMatrix<T>& c) const;

  /// y = op(A) · x — the matrix-vector product of §IV (Eqs. 4–6). Same
  /// two-stage structure with p = 1; y is overwritten.
  void multiply_vector(
      std::span<const T> x, std::span<T> y,
      UpdateSchedule schedule = UpdateSchedule::kBranchDynamic) const;

  /// Decompresses back to an explicit CSR matrix equal to op(A) — the exact
  /// inverse of compression (Equation 2 applied down the tree). Useful for
  /// interop and as a self-check; O(nnz(op(A))) time and memory.
  [[nodiscard]] CsrMatrix<T> materialize() const;

  // ----------------------------------------------------------- mutation --
  // Incremental maintenance for dynamic graphs (cbm/mutate.cpp): patch the
  // delta CSR and repair the compression tree locally instead of
  // recompressing (no distance graph, no MCA solve). Supported for kPlain
  // and kSymScaled (the kinds whose column scale is recoverable; the
  // diagonal is treated as fixed — recompress when D itself must change).
  // NOT thread-safe against concurrent multiplies on the same instance:
  // mutate a private copy and publish it (what serve's cache does), or
  // serialise externally.

  /// Inserts the given edges into the binary pattern. Already-present edges
  /// are no-ops (counted in the result). Throws on out-of-range indices or
  /// unsupported kinds.
  MutationResult insert_edges(std::span<const EdgeUpdate> edges);

  /// Removes the given edges. Absent edges are no-ops (counted). Same
  /// contract as insert_edges.
  MutationResult remove_edges(std::span<const EdgeUpdate> edges);

  /// One batch applying inserts and removes together (shared core of the
  /// two entry points; a single edge may appear in only one of the spans).
  MutationResult mutate_edges(std::span<const EdgeUpdate> inserts,
                              std::span<const EdgeUpdate> removes);

  /// Compression staleness in [0, 1]: how far mutation has degraded this
  /// matrix from its last full compression. The max of (a) the fraction of
  /// rows re-parented to the virtual root and (b) the compression gain lost
  /// versus the fresh-compress estimate (the gain ratio captured at the
  /// last compress). 0 for a never-mutated matrix. Compared against
  /// RuntimeConfig::stale_threshold (CBM_STALE_THRESHOLD) to trigger full
  /// background recompression.
  [[nodiscard]] double staleness() const;

  /// Monotonic mutation-batch counter: anything memoised against this
  /// matrix's structure (execution plans, shape fingerprints) must be
  /// revalidated when the epoch moves.
  [[nodiscard]] std::uint64_t mutation_epoch() const {
    return mutation_.epoch;
  }

  /// The raw staleness bookkeeping (cross-checked by
  /// cbm::check::validate_mutation).
  [[nodiscard]] const MutationBookkeeping& mutation_state() const {
    return mutation_;
  }

  /// The α threshold mutation re-checks admissibility against (the compress
  /// option; 0 for from_parts / MST-built matrices).
  [[nodiscard]] int alpha() const { return alpha_; }

  [[nodiscard]] index_t rows() const { return delta_.rows(); }
  [[nodiscard]] index_t cols() const { return delta_.cols(); }
  [[nodiscard]] CbmKind kind() const { return kind_; }

  [[nodiscard]] const CompressionTree& tree() const { return tree_; }
  [[nodiscard]] const CsrMatrix<T>& delta_matrix() const { return delta_; }

  /// Left/update-stage diagonal, kept for kSymScaled and kTwoSided (empty
  /// otherwise).
  [[nodiscard]] std::span<const T> diagonal() const { return diag_; }

  /// Heap bytes of everything multiply() needs: delta CSR + tree (+ diagonal
  /// for kSymScaled). The paper's S_CBM.
  [[nodiscard]] std::size_t bytes() const;

  /// Scalar multiply/add operations one multiply() against a p-column dense
  /// matrix performs (Property-2 accounting; compare csr_spmm_flops).
  [[nodiscard]] std::size_t scalar_ops(index_t bcols) const;

 private:
  static CbmMatrix compress_impl(const CsrMatrix<T>& a,
                                 std::span<const T> column_scale,
                                 std::span<const T> update_diag, CbmKind kind,
                                 const CbmOptions& options, CbmStats* stats);

  /// Lazily builds row_nnz_ (per-row nnz of op(A)'s pattern, a topo sweep
  /// over delta signs) and the mutation baselines (mutate.cpp).
  void ensure_mutation_state();

  CbmKind kind_ = CbmKind::kPlain;
  CompressionTree tree_;
  CsrMatrix<T> delta_;   ///< A' or (AD)'
  std::vector<T> diag_;  ///< update-stage diagonal (kSymScaled / kTwoSided)
  int alpha_ = 0;        ///< admissibility threshold mutation re-checks
  MutationBookkeeping mutation_;
  /// Per-row nnz of the represented pattern; empty until the first mutation
  /// builds it (then maintained incrementally).
  std::vector<index_t> row_nnz_;
  /// Fused-engine row schedule, derived from (tree_, kind_, diag_) at
  /// construction and immutable afterwards except by mutation, which swaps
  /// in a fresh schedule (copies of the matrix keep sharing the old one).
  std::shared_ptr<const FusedRowSchedule<T>> fused_schedule_;
};

extern template class CbmMatrix<float>;
extern template class CbmMatrix<double>;

}  // namespace cbm
