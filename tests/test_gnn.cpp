// Tests for the GNN layers: GCN (the paper's Eq. 1 application), GIN and
// GraphSAGE. The load-bearing property: swapping the adjacency operand from
// CSR to CBM never changes the network's output beyond float round-off.
#include <gtest/gtest.h>

#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "gnn/gcn.hpp"
#include "gnn/gin.hpp"
#include "gnn/sage.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

/// Builds matched CSR and CBM operands for Â of a graph.
struct AhatPair {
  std::unique_ptr<CsrAdjacency<float>> csr;
  std::unique_ptr<CbmAdjacency<float>> cbm;
};

AhatPair make_ahat(const Graph& g, int alpha = 0) {
  AhatPair pair;
  pair.csr = std::make_unique<CsrAdjacency<float>>(
      gcn_normalized_adjacency<float>(g));
  const auto norm = gcn_normalization<float>(g);
  pair.cbm = std::make_unique<CbmAdjacency<float>>(
      CbmMatrix<float>::compress_scaled(norm.a_plus_i,
                                        std::span<const float>(norm.dinv_sqrt),
                                        CbmKind::kSymScaled, {.alpha = alpha}));
  return pair;
}

TEST(GcnLayer, ForwardMatchesManualComputation) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto ahat = gcn_normalized_adjacency<float>(g);
  CsrAdjacency<float> adj(ahat);

  DenseMatrix<float> w(2, 2, {1.0f, 0.0f, 0.0f, 2.0f});
  GcnLayer<float> layer(w, {});
  const DenseMatrix<float> h(3, 2, {1, 2, 3, 4, 5, 6});
  DenseMatrix<float> scratch(3, 2), out(3, 2);
  layer.forward(adj, h, scratch, out);

  // Manual: HW then Â(HW).
  DenseMatrix<float> hw(3, 2), expect(3, 2);
  gemm_naive(h, w, hw);
  const auto ahat_dense = test::to_dense(ahat);
  gemm_naive(ahat_dense, hw, expect);
  EXPECT_TRUE(allclose(out, expect, 1e-5, 1e-6));
}

TEST(GcnLayer, BiasApplied) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  CsrAdjacency<float> adj(gcn_normalized_adjacency<float>(g));
  DenseMatrix<float> w(1, 2, {1.0f, 1.0f});
  GcnLayer<float> with_bias(w, {10.0f, 20.0f});
  GcnLayer<float> without(w, {});
  const DenseMatrix<float> h(2, 1, {1.0f, 2.0f});
  DenseMatrix<float> scratch(2, 2), out_a(2, 2), out_b(2, 2);
  with_bias.forward(adj, h, scratch, out_a);
  without.forward(adj, h, scratch, out_b);
  for (index_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(out_a(i, 0), out_b(i, 0) + 10.0f);
    EXPECT_FLOAT_EQ(out_a(i, 1), out_b(i, 1) + 20.0f);
  }
}

TEST(GcnLayer, ShapeValidation) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  CsrAdjacency<float> adj(gcn_normalized_adjacency<float>(g));
  Rng rng(1);
  GcnLayer<float> layer(3, 4, rng);
  DenseMatrix<float> h_bad(2, 2), scratch(2, 4), out(2, 4);
  EXPECT_THROW(layer.forward(adj, h_bad, scratch, out), CbmError);
}

class Gcn2Equivalence : public ::testing::TestWithParam<int> {};

TEST_P(Gcn2Equivalence, CsrAndCbmOperandsAgree) {
  const int alpha = GetParam();
  const Graph g = clique_union(
      {.num_nodes = 120, .num_cliques = 160, .clique_min = 3, .clique_max = 8,
       .reuse_prob = 0.7, .size_exponent = 2.0},
      91);
  const auto pair = make_ahat(g, alpha);

  const Gcn2<float> model(16, 12, 7, /*seed=*/5);
  const auto x = test::random_dense<float>(g.num_nodes(), 16, 6);
  Gcn2<float>::Workspace ws(g.num_nodes(), 12, 7);
  DenseMatrix<float> out_csr(g.num_nodes(), 7), out_cbm(g.num_nodes(), 7);
  model.forward(*pair.csr, x, ws, out_csr);
  model.forward(*pair.cbm, x, ws, out_cbm);
  // The paper's §VI-B criterion: relative tolerance 1e-5.
  EXPECT_TRUE(allclose(out_cbm, out_csr, 1e-5, 1e-5))
      << "alpha=" << alpha << " max diff " << max_abs_diff(out_cbm, out_csr);
}

INSTANTIATE_TEST_SUITE_P(Alphas, Gcn2Equivalence,
                         ::testing::Values(0, 1, 4, 16));

TEST(GcnStack, DeepStackCsrAndCbmAgree) {
  const Graph g = clique_union(
      {.num_nodes = 90, .num_cliques = 120, .clique_min = 3, .clique_max = 7,
       .reuse_prob = 0.7, .size_exponent = 2.0},
      93);
  const auto pair = make_ahat(g, 2);
  const std::vector<index_t> dims = {12, 16, 10, 8, 4};  // 4 layers
  const GcnStack<float> model(dims, 11);
  EXPECT_EQ(model.num_layers(), 4u);

  const auto x = test::random_dense<float>(g.num_nodes(), 12, 12);
  GcnStack<float>::Workspace ws(g.num_nodes(), dims);
  DenseMatrix<float> out_csr(g.num_nodes(), 4), out_cbm(g.num_nodes(), 4);
  model.forward(*pair.csr, x, ws, out_csr);
  model.forward(*pair.cbm, x, ws, out_cbm);
  EXPECT_TRUE(allclose(out_cbm, out_csr, 1e-4, 1e-5));
}

TEST(GcnStack, SingleLayerMatchesGcnLayer) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  CsrAdjacency<float> adj(gcn_normalized_adjacency<float>(g));
  const std::vector<index_t> dims = {3, 2};
  const GcnStack<float> stack(dims, 21);
  const auto x = test::random_dense<float>(4, 3, 22);
  GcnStack<float>::Workspace ws(4, dims);
  DenseMatrix<float> out_stack(4, 2), out_layer(4, 2), scratch(4, 2);
  stack.forward(adj, x, ws, out_stack);
  stack.layer(0).forward(adj, x, scratch, out_layer);
  // Single layer: no trailing activation, outputs identical.
  EXPECT_TRUE(allclose(out_stack, out_layer, 0.0, 0.0));
}

TEST(GcnStack, Validation) {
  EXPECT_THROW(GcnStack<float>({5}, 1), CbmError);
  const std::vector<index_t> dims = {4, 3, 2};
  const GcnStack<float> model(dims, 2);
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  CsrAdjacency<float> adj(gcn_normalized_adjacency<float>(g));
  const auto x = test::random_dense<float>(3, 4, 3);
  // Workspace built for a different architecture must be rejected.
  GcnStack<float>::Workspace wrong(3, {4, 2});
  DenseMatrix<float> out(3, 2);
  EXPECT_THROW(model.forward(adj, x, wrong, out), CbmError);
}

TEST(Gcn2, DeterministicConstruction) {
  const Gcn2<float> a(8, 6, 4, 42), b(8, 6, 4, 42);
  EXPECT_TRUE(allclose(a.layer0().weight(), b.layer0().weight(), 0.0, 0.0));
  EXPECT_TRUE(allclose(a.layer1().weight(), b.layer1().weight(), 0.0, 0.0));
}

TEST(Gin, CsrAndCbmOperandsAgree) {
  const Graph g = clique_union(
      {.num_nodes = 80, .num_cliques = 100, .clique_min = 3, .clique_max = 6,
       .reuse_prob = 0.6, .size_exponent = 2.0},
      17);
  // GIN aggregates over the raw binary adjacency (A·H).
  CsrAdjacency<float> csr(g.adjacency());
  CbmAdjacency<float> cbm(CbmMatrix<float>::compress(g.adjacency()));

  Rng rng(3);
  GinLayer<float> layer(10, 14, 6, /*epsilon=*/0.3f, rng);
  const auto h = test::random_dense<float>(g.num_nodes(), 10, 4);
  GinLayer<float>::Workspace ws(g.num_nodes(), 10, 14);
  DenseMatrix<float> out_csr(g.num_nodes(), 6), out_cbm(g.num_nodes(), 6);
  layer.forward(csr, h, ws, out_csr);
  layer.forward(cbm, h, ws, out_cbm);
  EXPECT_TRUE(allclose(out_cbm, out_csr, 1e-5, 1e-5));
}

TEST(Gin, EpsilonZeroMatchesPlainSum) {
  // With ε=0 the aggregate is H + AH; verify on a tiny graph by hand.
  const Graph g = Graph::from_edges(2, {{0, 1}});
  CsrAdjacency<float> adj(g.adjacency());
  Rng rng(8);
  GinLayer<float> layer(1, 1, 1, 0.0f, rng);
  const DenseMatrix<float> h(2, 1, {3.0f, 5.0f});
  GinLayer<float>::Workspace ws(2, 1, 1);
  DenseMatrix<float> out(2, 1);
  layer.forward(adj, h, ws, out);
  // agg = {3+5, 5+3} = {8, 8}; output = relu(8*w0)*w1 for both rows → equal.
  EXPECT_FLOAT_EQ(out(0, 0), out(1, 0));
}

TEST(Sage, CsrAndCbmOperandsAgree) {
  const Graph g = clique_union(
      {.num_nodes = 70, .num_cliques = 90, .clique_min = 3, .clique_max = 6,
       .reuse_prob = 0.6, .size_exponent = 2.0},
      23);
  CsrAdjacency<float> csr(g.adjacency());
  CbmAdjacency<float> cbm(CbmMatrix<float>::compress(g.adjacency()));

  std::vector<float> inv_deg(static_cast<std::size_t>(g.num_nodes()));
  for (index_t v = 0; v < g.num_nodes(); ++v) {
    inv_deg[v] = g.degree(v) > 0 ? 1.0f / g.degree(v) : 0.0f;
  }
  Rng rng(9);
  SageLayer<float> layer(8, 5, inv_deg, rng);
  const auto h = test::random_dense<float>(g.num_nodes(), 8, 10);
  SageLayer<float>::Workspace ws(g.num_nodes(), 8);
  DenseMatrix<float> out_csr(g.num_nodes(), 5), out_cbm(g.num_nodes(), 5);
  layer.forward(csr, h, ws, out_csr);
  layer.forward(cbm, h, ws, out_cbm);
  EXPECT_TRUE(allclose(out_cbm, out_csr, 1e-5, 1e-5));
}

TEST(Sage, MeanAggregationIsExact) {
  // Star: node 0 adjacent to 1,2; mean of neighbors' features.
  const Graph g = Graph::from_edges(3, {{0, 1}, {0, 2}});
  CsrAdjacency<float> adj(g.adjacency());
  std::vector<float> inv_deg = {0.5f, 1.0f, 1.0f};
  Rng rng(10);
  SageLayer<float> layer(1, 1, inv_deg, rng);
  const DenseMatrix<float> h(3, 1, {0.0f, 2.0f, 4.0f});
  SageLayer<float>::Workspace ws(3, 1);
  DenseMatrix<float> out(3, 1);
  layer.forward(adj, h, ws, out);
  // agg(0) = (2+4)/2 = 3; out = relu(0*ws + 3*wn).
  const float wn = layer.w_neigh()(0, 0);
  const float expect = std::max(0.0f, 3.0f * wn);
  EXPECT_NEAR(out(0, 0), expect, 1e-6);
}

}  // namespace
}  // namespace cbm
