#include "serve/cache.hpp"

#include <cstdio>
#include <utility>

#include "cbm/serialize.hpp"
#include "obs/obs.hpp"

namespace cbm::serve {

template <typename T>
AdjacencyCache<T>::AdjacencyCache(std::size_t byte_budget,
                                  std::string persist_dir)
    : byte_budget_(byte_budget), persist_dir_(std::move(persist_dir)) {}

template <typename T>
std::string AdjacencyCache<T>::entry_path(const GraphKey& key) const {
  if (persist_dir_.empty()) return {};
  char name[64];
  std::snprintf(name, sizeof(name), "%016llx-%u-%d.cbmf",
                static_cast<unsigned long long>(key.fingerprint), key.kind,
                key.alpha);
  return persist_dir_ + "/" + name;
}

template <typename T>
typename AdjacencyCache<T>::EntryPtr AdjacencyCache<T>::lookup(
    const GraphKey& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      CBM_COUNTER_ADD("cbm.serve.cache.hits", 1);
      return *it->second;
    }
  }
  // In-memory miss: try the disk tier before making the caller recompress.
  if (!persist_dir_.empty()) {
    try {
      CbmMatrix<T> cbm = load_cbm_file<T>(entry_path(key));
      if (cbm.rows() == key.rows && cbm.cols() == key.cols &&
          static_cast<std::uint32_t>(cbm.kind()) == key.kind) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.disk_hits;
        }
        CBM_COUNTER_ADD("cbm.serve.cache.disk_hits", 1);
        return insert(key, std::move(cbm));
      }
      // Shape/kind disagree with the key: stale or colliding file. Treat as
      // a miss; the re-insert below will overwrite it.
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_errors;
      CBM_COUNTER_ADD("cbm.serve.cache.disk_errors", 1);
    } catch (const CbmError&) {
      // Absent, truncated, or wrong-format file — all degrade to a miss.
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  CBM_COUNTER_ADD("cbm.serve.cache.misses", 1);
  return nullptr;
}

template <typename T>
typename AdjacencyCache<T>::EntryPtr AdjacencyCache<T>::insert(
    const GraphKey& key, CbmMatrix<T> cbm) {
  auto entry = std::make_shared<CacheEntry<T>>(key, std::move(cbm));
  if (!persist_dir_.empty()) {
    try {
      save_cbm_file(entry_path(key), entry->cbm());
    } catch (const CbmError&) {
      // Persistence is an optimisation tier: an unwritable directory must
      // not fail the request that compressed the graph.
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_errors;
      CBM_COUNTER_ADD("cbm.serve.cache.disk_errors", 1);
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // First writer wins: a concurrent compression of the same graph already
    // landed. Return the resident entry so plan memoisation stays shared.
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  lru_.push_front(entry);
  index_.emplace(key, lru_.begin());
  bytes_ += entry->bytes();
  evict_over_budget_locked();
  stats_.entries = index_.size();
  stats_.bytes = bytes_;
  CBM_GAUGE_SET("cbm.serve.cache.bytes", static_cast<std::int64_t>(bytes_));
  CBM_GAUGE_SET("cbm.serve.cache.entries",
                static_cast<std::int64_t>(index_.size()));
  return entry;
}

template <typename T>
void AdjacencyCache<T>::evict_over_budget_locked() {
  // Never evict the MRU entry (the one just inserted/touched): a single
  // over-budget graph still has to be servable.
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const EntryPtr& victim = lru_.back();
    bytes_ -= victim->bytes();
    index_.erase(victim->key());
    lru_.pop_back();
    ++stats_.evictions;
    CBM_COUNTER_ADD("cbm.serve.cache.evictions", 1);
  }
}

template <typename T>
void AdjacencyCache<T>::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.entries = 0;
  stats_.bytes = 0;
  CBM_GAUGE_SET("cbm.serve.cache.bytes", 0);
  CBM_GAUGE_SET("cbm.serve.cache.entries", 0);
}

template <typename T>
typename AdjacencyCache<T>::Stats AdjacencyCache<T>::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

template class CacheEntry<float>;
template class CacheEntry<double>;
template class AdjacencyCache<float>;
template class AdjacencyCache<double>;

}  // namespace cbm::serve
