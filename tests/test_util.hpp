// Shared helpers for the test suite — thin aliases over the cbm::check
// oracle harness (src/check/oracle.hpp), which owns the seeded generators,
// dense reference kernels, and comparators, plus the gtest-specific seed
// plumbing that cannot live in the library.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "check/oracle.hpp"
#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace cbm::test {

/// Sets an environment variable for the current scope, restoring the prior
/// state on destruction (tests must not leak knobs into each other).
class EnvGuard {
 public:
  EnvGuard(std::string name, const std::string& value)
      : name_(std::move(name)) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) previous_ = old;
    had_previous_ = old != nullptr;
    ::setenv(name_.c_str(), value.c_str(), 1);
  }
  /// Unset variant: clears the variable for the guard's lifetime, so a test
  /// can assert default behaviour even when CI pins the knob ambiently
  /// (e.g. the forced-schedule jobs export CBM_UPDATE_SCHEDULE et al.).
  explicit EnvGuard(std::string name) : name_(std::move(name)) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) previous_ = old;
    had_previous_ = old != nullptr;
    ::unsetenv(name_.c_str());
  }
  ~EnvGuard() {
    if (had_previous_) {
      ::setenv(name_.c_str(), previous_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string name_;
  std::string previous_;
  bool had_previous_ = false;
};

/// Seed for the currently running gtest case: distinct per test (a hash of
/// "Suite.Case", including the parameterisation suffix), reproducible across
/// runs, overridable with CBM_TEST_SEED. Pass different `salt`s to draw
/// several independent seeds inside one test. Include the returned value in
/// assertion messages (or via SCOPED_TRACE) so a failure names the seed that
/// reproduces it.
inline std::uint64_t auto_seed(std::uint64_t salt = 0) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = "cbm-no-test";
  if (info != nullptr) {
    name = std::string(info->test_suite_name()) + "." + info->name();
  }
  return check::seed_from_name(name, salt);
}

/// SCOPED_TRACE message naming the active seed, e.g.
/// `SCOPED_TRACE(test::seed_trace(seed));` — on failure gtest prints it,
/// and `CBM_TEST_SEED=<value>` reruns the exact case (docs/testing.md).
inline std::string seed_trace(std::uint64_t seed) {
  return "reproduce with CBM_TEST_SEED=" + std::to_string(seed);
}

/// Random binary n×n matrix with expected `density` fraction of ones.
inline CsrMatrix<float> random_binary(index_t n, double density,
                                      std::uint64_t seed) {
  return check::random_binary<float>(n, density, seed);
}

/// Random binary matrix with groups of near-duplicate rows (the regime CBM
/// compresses): `groups` templates, each row = its group's template with
/// `flips` random toggles.
inline CsrMatrix<float> clustered_binary(index_t n, index_t groups,
                                         index_t base_nnz, index_t flips,
                                         std::uint64_t seed) {
  return check::clustered_binary<float>(n, groups, base_nnz, flips, seed);
}

/// Densifies a CSR matrix (test oracle input).
template <typename T>
DenseMatrix<T> to_dense(const CsrMatrix<T>& a) {
  return check::to_dense(a);
}

/// Random dense matrix in [0, 1).
template <typename T>
DenseMatrix<T> random_dense(index_t rows, index_t cols, std::uint64_t seed) {
  return check::random_dense<T>(rows, cols, seed);
}

/// Random positive diagonal in [0.5, 1.5).
template <typename T>
std::vector<T> random_diagonal(index_t n, std::uint64_t seed) {
  return check::random_diagonal<T>(n, seed);
}

}  // namespace cbm::test
