// Diagonal scalings of sparse matrices: AD, DA, D1·A·D2.
//
// The paper's GCN workload uses the symmetric normalisation
// Â = D^{-1/2} (A+I) D^{-1/2}; these helpers build the explicitly scaled CSR
// matrices that serve as the baseline operands.
#pragma once

#include <span>

#include "sparse/csr.hpp"

namespace cbm {

/// Returns A·D where D = diag(d): scales column j by d[j].
template <typename T>
CsrMatrix<T> scale_columns(const CsrMatrix<T>& a, std::span<const T> d);

/// Returns D·A where D = diag(d): scales row i by d[i].
template <typename T>
CsrMatrix<T> scale_rows(const CsrMatrix<T>& a, std::span<const T> d);

/// Returns diag(dl)·A·diag(dr).
template <typename T>
CsrMatrix<T> scale_both(const CsrMatrix<T>& a, std::span<const T> dl,
                        std::span<const T> dr);

/// Returns A + I (self-loops). Requires square A; entries on the diagonal are
/// incremented (binary adjacency matrices of simple graphs have none).
template <typename T>
CsrMatrix<T> add_identity(const CsrMatrix<T>& a);

extern template CsrMatrix<float> scale_columns<float>(const CsrMatrix<float>&,
                                                      std::span<const float>);
extern template CsrMatrix<double> scale_columns<double>(
    const CsrMatrix<double>&, std::span<const double>);
extern template CsrMatrix<float> scale_rows<float>(const CsrMatrix<float>&,
                                                   std::span<const float>);
extern template CsrMatrix<double> scale_rows<double>(const CsrMatrix<double>&,
                                                     std::span<const double>);
extern template CsrMatrix<float> scale_both<float>(const CsrMatrix<float>&,
                                                   std::span<const float>,
                                                   std::span<const float>);
extern template CsrMatrix<double> scale_both<double>(const CsrMatrix<double>&,
                                                     std::span<const double>,
                                                     std::span<const double>);
extern template CsrMatrix<float> add_identity<float>(const CsrMatrix<float>&);
extern template CsrMatrix<double> add_identity<double>(
    const CsrMatrix<double>&);

}  // namespace cbm
