#include "cbm/multiply_plan.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/envknobs.hpp"
#include "common/error.hpp"

namespace cbm {

namespace {

/// Environment-selected enum value: unset/empty keeps `fallback`, anything
/// unrecognised throws with the variable name (benches must not silently
/// measure the wrong engine).
template <typename Enum, std::size_t N>
Enum env_enum(const char* name,
              const std::pair<const char*, Enum> (&table)[N], Enum fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  for (const auto& [text, value] : table) {
    if (std::string_view(v) == text) return value;
  }
  throw CbmError(std::string(name) + ": unknown value '" + v + "'");
}

template <typename Enum, std::size_t N>
Enum parse_enum(const char* what,
                const std::pair<const char*, Enum> (&table)[N],
                std::string_view text) {
  for (const auto& [name, value] : table) {
    if (text == name) return value;
  }
  throw CbmError(std::string(what) + ": unknown value '" + std::string(text) +
                 "'");
}

constexpr std::pair<const char*, MultiplyPath> kPaths[] = {
    {"two_stage", MultiplyPath::kTwoStage},
    {"fused", MultiplyPath::kFusedTiled},
};
constexpr std::pair<const char*, SpmmSchedule> kSpmm[] = {
    {"row_static", SpmmSchedule::kRowStatic},
    {"row_dynamic", SpmmSchedule::kRowDynamic},
    {"nnz_balanced", SpmmSchedule::kNnzBalanced},
};
constexpr std::pair<const char*, UpdateSchedule> kUpdate[] = {
    {"sequential", UpdateSchedule::kSequential},
    {"branch_dynamic", UpdateSchedule::kBranchDynamic},
    {"branch_static", UpdateSchedule::kBranchStatic},
    {"column_split", UpdateSchedule::kColumnSplit},
    {"task_graph", UpdateSchedule::kTaskGraph},
};

}  // namespace

MultiplySchedule MultiplySchedule::two_stage(UpdateSchedule update,
                                             SpmmSchedule spmm) {
  MultiplySchedule s;
  s.path = MultiplyPath::kTwoStage;
  s.update = update;
  s.spmm = spmm;
  return s;
}

MultiplySchedule MultiplySchedule::fused(index_t tile_cols) {
  MultiplySchedule s;
  s.path = MultiplyPath::kFusedTiled;
  s.tile_cols = tile_cols;
  return s;
}

MultiplySchedule MultiplySchedule::from_env() {
  MultiplySchedule s;
  s.path = env_enum("CBM_MULTIPLY_PATH", kPaths, s.path);
  s.spmm = env_enum("CBM_SPMM_SCHEDULE", kSpmm, s.spmm);
  s.update = env_enum("CBM_UPDATE_SCHEDULE", kUpdate, s.update);
  if (const auto tile = env_tile_cols()) s.tile_cols = *tile;
  return s;
}

const char* multiply_path_name(MultiplyPath path) {
  switch (path) {
    case MultiplyPath::kTwoStage: return "two_stage";
    case MultiplyPath::kFusedTiled: return "fused";
  }
  return "?";
}

const char* spmm_schedule_name(SpmmSchedule schedule) {
  switch (schedule) {
    case SpmmSchedule::kRowStatic: return "row_static";
    case SpmmSchedule::kRowDynamic: return "row_dynamic";
    case SpmmSchedule::kNnzBalanced: return "nnz_balanced";
  }
  return "?";
}

const char* update_schedule_name(UpdateSchedule schedule) {
  switch (schedule) {
    case UpdateSchedule::kSequential: return "sequential";
    case UpdateSchedule::kBranchDynamic: return "branch_dynamic";
    case UpdateSchedule::kBranchStatic: return "branch_static";
    case UpdateSchedule::kColumnSplit: return "column_split";
    case UpdateSchedule::kTaskGraph: return "task_graph";
  }
  return "?";
}

MultiplyPath parse_multiply_path(std::string_view text) {
  return parse_enum("multiply path", kPaths, text);
}

SpmmSchedule parse_spmm_schedule(std::string_view text) {
  return parse_enum("spmm schedule", kSpmm, text);
}

UpdateSchedule parse_update_schedule(std::string_view text) {
  return parse_enum("update schedule", kUpdate, text);
}

}  // namespace cbm
