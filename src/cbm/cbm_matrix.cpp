#include "cbm/cbm_matrix.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "cbm/deltas.hpp"
#include "cbm/spmm_cbm.hpp"
#include "cbm/spmm_cbm_fused.hpp"
#include "cbm/update_kernels.hpp"
#include "check/check.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/vectorops.hpp"
#include "obs/obs.hpp"
#include "sparse/spmm.hpp"
#include "tree/arborescence.hpp"
#include "tree/mst.hpp"

namespace cbm {

namespace {

/// Compression-tree solve result with the per-phase timing split.
struct TreeSolve {
  std::vector<index_t> parent;  ///< per-row parent (virtual root encoded as n)
  std::int64_t weight = 0;
  std::size_t candidate_edges = 0;
  double distance_graph_seconds = 0.0;
  double solve_seconds = 0.0;
};

template <typename T>
TreeSolve solve_tree(const CsrMatrix<T>& pattern, const CbmOptions& options) {
  const index_t n = pattern.rows();
  TreeSolve out;
  Timer timer;
  if (options.algorithm == TreeAlgorithm::kMst) {
    DistanceGraph g;
    {
      CBM_SPAN("cbm.compress.distance_graph");
      g = build_full_distance_graph(pattern);
    }
    out.candidate_edges = g.candidate_edges;
    out.distance_graph_seconds = timer.seconds();
    timer.reset();
    CBM_SPAN("cbm.compress.tree_solve");
    const MstResult mst = kruskal_mst(g.num_nodes, g.edges);
    out.parent = root_tree(g.num_nodes, g.edges, mst.edge_ids, g.root);
    out.parent.resize(static_cast<std::size_t>(n));  // drop the root's entry
    out.weight = mst.total_weight;
    out.solve_seconds = timer.seconds();
    return out;
  }
  DistanceGraph g;
  {
    CBM_SPAN("cbm.compress.distance_graph");
    g = build_distance_graph(
        pattern,
        {.alpha = options.alpha,
         .max_candidates_per_row = options.max_candidates_per_row});
  }
  out.candidate_edges = g.candidate_edges;
  out.distance_graph_seconds = timer.seconds();
  timer.reset();
  CBM_SPAN("cbm.compress.tree_solve");
  ArborescenceResult arb = chu_liu_edmonds(g.num_nodes, g.edges, g.root);
  arb.parent.resize(static_cast<std::size_t>(n));
  out.parent = std::move(arb.parent);
  out.weight = arb.total_weight;
  out.solve_seconds = timer.seconds();
  return out;
}

}  // namespace

namespace {

// Row compression applies to any m×n binary matrix (rectangular parts of the
// partitioned format rely on this); only D·A·D requires squareness.
template <typename T>
void check_compress_input(const CsrMatrix<T>& a) {
  CBM_CHECK(a.is_binary(), "CBM compresses binary matrices");
  CBM_CHECK(a.has_sorted_unique_rows(),
            "CBM requires sorted, duplicate-free rows");
}

template <typename T>
void check_diag_length(std::size_t need, std::span<const T> diag,
                       const char* what) {
  CBM_CHECK(diag.size() == need,
            std::string(what) + " length does not match the matrix");
}

template <typename T>
void check_diag_nonzero(std::span<const T> diag, const char* what) {
  for (const T d : diag) {
    CBM_CHECK(d != T{0},
              std::string(what) + " requires nonzero entries (Eq. 6 divides"
                                  " by the update-stage diagonal)");
  }
}

}  // namespace

template <typename T>
CbmMatrix<T> CbmMatrix<T>::compress(const CsrMatrix<T>& a,
                                    const CbmOptions& options,
                                    CbmStats* stats) {
  return compress_scaled(a, {}, CbmKind::kPlain, options, stats);
}

template <typename T>
CbmMatrix<T> CbmMatrix<T>::compress_two_sided(const CsrMatrix<T>& a,
                                              std::span<const T> left_diag,
                                              std::span<const T> right_diag,
                                              const CbmOptions& options,
                                              CbmStats* stats) {
  check_compress_input(a);
  check_diag_length(static_cast<std::size_t>(a.rows()), left_diag,
                    "left diagonal");
  check_diag_length(static_cast<std::size_t>(a.cols()), right_diag,
                    "right diagonal");
  check_diag_nonzero(left_diag, "D1·A·D2");
  return compress_impl(a, right_diag, left_diag, CbmKind::kTwoSided, options,
                       stats);
}

template <typename T>
CbmMatrix<T> CbmMatrix<T>::compress_scaled(const CsrMatrix<T>& a,
                                           std::span<const T> diag,
                                           CbmKind kind,
                                           const CbmOptions& options,
                                           CbmStats* stats) {
  check_compress_input(a);
  CBM_CHECK(kind != CbmKind::kTwoSided,
            "use compress_two_sided for distinct diagonals");
  if (kind == CbmKind::kPlain) {
    CBM_CHECK(diag.empty(), "kPlain takes no diagonal");
  } else if (kind == CbmKind::kColumnScaled) {
    check_diag_length(static_cast<std::size_t>(a.cols()), diag, "diagonal");
  } else {
    CBM_CHECK(a.rows() == a.cols(), "D·A·D requires a square matrix");
    check_diag_length(static_cast<std::size_t>(a.rows()), diag, "diagonal");
    check_diag_nonzero(diag, "DAD");
  }
  return compress_impl(a, /*column_scale=*/diag,
                       /*update_diag=*/
                       kind == CbmKind::kSymScaled ? diag
                                                   : std::span<const T>{},
                       kind, options, stats);
}

template <typename T>
CbmMatrix<T> CbmMatrix<T>::compress_impl(const CsrMatrix<T>& a,
                                         std::span<const T> column_scale,
                                         std::span<const T> update_diag,
                                         CbmKind kind,
                                         const CbmOptions& options,
                                         CbmStats* stats) {
  CBM_SPAN("cbm.compress");
  Timer timer;
  CbmMatrix<T> m;
  m.kind_ = kind;

  TreeSolve solve = solve_tree(a, options);
  m.tree_ = CompressionTree::from_parents(std::move(solve.parent));

  Timer delta_timer;
  DeltaStats delta_stats;
  {
    CBM_SPAN("cbm.compress.deltas");
    m.delta_ = build_delta_matrix(a, m.tree_, column_scale, &delta_stats);
  }
  const double delta_seconds = delta_timer.seconds();
  m.diag_.assign(update_diag.begin(), update_diag.end());
  // Mutation baselines: what a fresh compression of this matrix achieves —
  // staleness() measures later drift against these (MST ignores α, so
  // mutation re-checks admissibility at the always-valid α = 0 there).
  m.alpha_ = options.algorithm == TreeAlgorithm::kMca ? options.alpha : 0;
  m.mutation_.baseline_nnz = delta_stats.total_nnz;
  m.mutation_.baseline_deltas = delta_stats.total_deltas;
  m.mutation_.source_nnz = delta_stats.total_nnz;

  // CBM_VALIDATE=build|full re-verifies the invariants compression just
  // established (Property 1, arborescence shape, delta consistency, and the
  // α admission for the MCA path — the MST path does not prune by α).
  if (const auto level = check::validate_level_from_env();
      level != check::ValidateLevel::kOff) {
    CBM_SPAN("cbm.validate");
    Timer validate_timer;
    const check::ValidateOptions vopts{
        .level = level,
        .alpha = options.algorithm == TreeAlgorithm::kMca ? options.alpha
                                                          : -1};
    check::enforce(check::validate_against(
        m.tree_, kind, std::span<const T>(m.diag_), m.delta_, a, column_scale,
        vopts));
    CBM_TIMING_RECORD("cbm.validate", validate_timer.seconds());
    CBM_COUNTER_ADD("cbm.validate.calls", 1);
  }

  CBM_COUNTER_ADD("cbm.compress.calls", 1);
  CBM_COUNTER_ADD("cbm.compress.rows", static_cast<std::int64_t>(a.rows()));
  CBM_TIMING_RECORD("cbm.compress.distance_graph",
                    solve.distance_graph_seconds);
  CBM_TIMING_RECORD("cbm.compress.tree_solve", solve.solve_seconds);
  CBM_TIMING_RECORD("cbm.compress.deltas", delta_seconds);

  if (stats != nullptr) {
    stats->build_seconds = timer.seconds();
    stats->distance_graph_seconds = solve.distance_graph_seconds;
    stats->tree_solve_seconds = solve.solve_seconds;
    stats->delta_seconds = delta_seconds;
    stats->candidate_edges = solve.candidate_edges;
    stats->tree_weight = solve.weight;
    stats->total_deltas = delta_stats.total_deltas;
    stats->source_nnz = delta_stats.total_nnz;
    stats->root_out_degree = m.tree_.root_out_degree();
    stats->max_depth = m.tree_.max_depth();
    stats->bytes = m.bytes();
  }
  m.fused_schedule_ = std::make_shared<const FusedRowSchedule<T>>(
      build_fused_row_schedule(m.tree_, m.kind_, std::span<const T>(m.diag_)));
  return m;
}

template <typename T>
CbmMatrix<T> CbmMatrix<T>::from_parts(CbmKind kind, CompressionTree tree,
                                      CsrMatrix<T> delta,
                                      std::vector<T> diag) {
  CBM_CHECK(tree.num_rows() == delta.rows(),
            "from_parts: tree/delta row mismatch");
  const bool needs_diag =
      kind == CbmKind::kSymScaled || kind == CbmKind::kTwoSided;
  if (needs_diag) {
    CBM_CHECK(diag.size() == static_cast<std::size_t>(delta.rows()),
              "from_parts: diagonal length mismatch");
    check_diag_nonzero(std::span<const T>(diag), "row-scaled kind");
  } else {
    CBM_CHECK(diag.empty(), "from_parts: unexpected diagonal");
  }
  CbmMatrix<T> m;
  m.kind_ = kind;
  m.tree_ = std::move(tree);
  m.delta_ = std::move(delta);
  m.diag_ = std::move(diag);
  // Parts arrive from outside the compression pipeline (deserialisation,
  // partitioned assembly) — the natural place for CBM_VALIDATE to re-check
  // the invariants the constructor cannot cheaply enforce itself.
  if (const auto level = check::validate_level_from_env();
      level != check::ValidateLevel::kOff) {
    CBM_SPAN("cbm.validate");
    check::enforce(check::validate(m, {.level = level}));
    CBM_COUNTER_ADD("cbm.validate.calls", 1);
  }
  m.fused_schedule_ = std::make_shared<const FusedRowSchedule<T>>(
      build_fused_row_schedule(m.tree_, m.kind_, std::span<const T>(m.diag_)));
  return m;
}

template <typename T>
void CbmMatrix<T>::multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                            const MultiplyOptions& options) const {
  CBM_CHECK(cols() == b.rows(), "multiply: inner dimensions differ");
  CBM_CHECK(c.rows() == rows() && c.cols() == b.cols(),
            "multiply: output shape mismatch");
  const index_t col_end = options.col_end < 0 ? b.cols() : options.col_end;
  CBM_CHECK(options.col_begin >= 0 && options.col_begin <= col_end &&
                col_end <= b.cols(),
            "multiply: column range out of bounds");
  if (options.validate == MultiplyValidate::kFull) {
    // Distrusted input (e.g. a deserialised cache entry): re-audit the
    // format invariants before trusting the engines with it.
    check::enforce(
        check::validate(*this, {.level = check::ValidateLevel::kFull}));
  }
  MultiplySchedule plan;
  std::optional<SimdLevel> simd = options.simd;
  if (options.plan) {
    plan = *options.plan;
  } else {
    const tune::PlanDecision decision =
        options.runtime != nullptr ? resolve_plan(b, c, *options.runtime)
                                   : resolve_plan(b, c);
    plan = decision.plan.schedule;
    if (!simd) simd = decision.plan.simd;
  }
  std::optional<SimdScope> scope;
  if (simd) scope.emplace(*simd);
  if (options.col_begin == 0 && col_end == b.cols()) {
    multiply(b, c, plan);
  } else {
    multiply_columns(b, c, options.col_begin, col_end, plan);
  }
}

template <typename T>
void CbmMatrix<T>::multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                            UpdateSchedule schedule) const {
  multiply(b, c, MultiplySchedule::two_stage(schedule));
}

template <typename T>
void CbmMatrix<T>::multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                            const MultiplySchedule& schedule) const {
  CBM_CHECK(cols() == b.rows(), "multiply: inner dimensions differ");
  CBM_CHECK(c.rows() == rows() && c.cols() == b.cols(),
            "multiply: output shape mismatch");
  CBM_SPAN_HW("cbm.multiply");
  CBM_COUNTER_ADD("cbm.multiply.calls", 1);
  CBM_COUNTER_ADD("cbm.multiply.delta_nnz",
                  static_cast<std::int64_t>(delta_.nnz()));
  if (schedule.path == MultiplyPath::kFusedTiled) {
    // Both stages run per column tile inside the fused engine (its span and
    // tile counters live in cbm_multiply_fused).
    cbm_multiply_fused(tree_, kind_, std::span<const T>(diag_), delta_, b, c,
                       schedule.tile_cols, fused_schedule_.get());
    return;
  }
  {
    // Multiply stage: C = A'·B (or (AD)'·B) — one sparse-dense product.
    CBM_SPAN("cbm.multiply_stage");
    csr_spmm(delta_, b, c, schedule.spmm);
  }
  // Update stage: fold parent rows down the compression tree (its span and
  // schedule counters live in cbm_update_stage).
  cbm_update_stage(tree_, kind_, std::span<const T>(diag_), c,
                   schedule.update);
}

template <typename T>
void CbmMatrix<T>::multiply_columns(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                                    index_t col0, index_t col1,
                                    const MultiplySchedule& schedule) const {
  CBM_CHECK(cols() == b.rows(), "multiply_columns: inner dimensions differ");
  CBM_CHECK(c.rows() == rows() && c.cols() == b.cols(),
            "multiply_columns: output shape mismatch");
  CBM_CHECK(col0 >= 0 && col0 <= col1 && col1 <= b.cols(),
            "multiply_columns: column range out of bounds");
  if (col1 == col0) return;
  if (schedule.path == MultiplyPath::kFusedTiled) {
    cbm_multiply_fused_columns(tree_, kind_, std::span<const T>(diag_), delta_,
                               b, c, col0, col1, fused_schedule_.get());
    return;
  }
  // Two-stage, panel-local: the delta SpMM over the panel, then one
  // sequential topological sweep restricted to the same columns (updates
  // never mix columns, so the panel needs no other panel's rows).
  csr_spmm_range(delta_, b, c, 0, rows(), col0, col1);
  const auto c0 = static_cast<std::size_t>(col0);
  const auto len = static_cast<std::size_t>(col1 - col0);
  for (const index_t x : tree_.topological_order()) {
    detail::update_row(tree_, kind_, std::span<const T>(diag_), c, x, c0, len);
  }
}

template <typename T>
tune::PlanDecision CbmMatrix<T>::resolve_plan(const DenseMatrix<T>& b,
                                              DenseMatrix<T>& c) const {
  return resolve_plan(b, c, RuntimeConfig::from_env());
}

template <typename T>
tune::PlanDecision CbmMatrix<T>::resolve_plan(
    const DenseMatrix<T>& b, DenseMatrix<T>& c,
    const RuntimeConfig& config) const {
  CBM_CHECK(cols() == b.rows(), "resolve_plan: inner dimensions differ");
  CBM_CHECK(c.rows() == rows() && c.cols() == b.cols(),
            "resolve_plan: output shape mismatch");
  tune::ShapeKey key;
  key.rows = rows();
  key.cols = cols();
  key.bcols = b.cols();
  key.delta_nnz = static_cast<std::int64_t>(delta_.nnz());
  key.threads = max_threads();
  key.elem_bytes = sizeof(T);
  // Probes are real multiplies into the caller's C: every candidate plan
  // computes the identical product, so even a "wasted" probe leaves C
  // correct and warm. One untimed warmup rep levels the cache state across
  // candidates (otherwise whichever plan probes first pays the cold-operand
  // cost and loses), then min-of-two timed reps rejects a plan that only
  // looked fast because a context switch hit its rival.
  const auto probe = [&](const tune::Plan& plan) -> tune::ProbeSample {
    CBM_SPAN("cbm.tune.probe_plan");
    SimdScope scope(plan.simd);
    tune::ProbeSample best;
    for (int rep = 0; rep < 3; ++rep) {
      obs::hw::HwRegion region(/*request=*/rep > 0);  // skip the warmup rep
      Timer timer;
      multiply(b, c, plan.schedule);
      const double seconds = timer.seconds();
      if (rep == 0) continue;  // warmup
      const obs::hw::HwSample sample = region.stop();
      if (best.seconds < 0.0 || seconds < best.seconds) {
        best.seconds = seconds;
        // Attribution of the fastest rep: *why* this plan's number is what
        // it is — persisted into the tuning cache next to the winner.
        best.ipc = sample.available ? std::max(sample.ipc(), 0.0) : 0.0;
        best.llc_miss_rate = sample.available ? sample.llc_miss_rate() : -1.0;
      }
    }
    if (best.seconds >= 0.0) {
      CBM_TIMING_RECORD("cbm.tune.probe_seconds", best.seconds);
    }
    return best;
  };
  tune::PlanDecision decision = tune::Tuner::instance().decide(
      key, tune::tune_mode_from_config(config), probe);
  if (!decision.tuned) {
    // Analytic fallback: the config's plan, defaulting to the fused engine
    // (whose LLC-share tile policy is the analytic tuner) when no path was
    // forced, under the active SIMD level.
    decision.plan.schedule = MultiplySchedule::from_config(config);
    if (!config.multiply_path || config.multiply_path->empty()) {
      decision.plan.schedule.path = MultiplyPath::kFusedTiled;
    }
    decision.plan.simd = simd_level();
  }
  return decision;
}

template <typename T>
void CbmMatrix<T>::multiply_auto(const DenseMatrix<T>& b,
                                 DenseMatrix<T>& c) const {
  multiply(b, c, MultiplyOptions::auto_plan());
}

template <typename T>
void CbmMatrix<T>::multiply_vector(std::span<const T> x, std::span<T> y,
                                   UpdateSchedule schedule) const {
  CBM_CHECK(x.size() == static_cast<std::size_t>(cols()),
            "multiply_vector: x length mismatch");
  CBM_CHECK(y.size() == static_cast<std::size_t>(rows()),
            "multiply_vector: y length mismatch");
  CBM_SPAN("cbm.multiply_vector");
  {
    CBM_SPAN("cbm.multiply_stage");
    csr_spmv(delta_, x, y);
  }
  cbm_update_stage_vector(tree_, kind_, std::span<const T>(diag_), y,
                          schedule);
}

template <typename T>
CsrMatrix<T> CbmMatrix<T>::materialize() const {
  const index_t n = rows();
  // Reconstruct each row from its parent along the tree (Eq. 2): +value
  // inserts a column (carrying the folded column scale), −value removes it.
  // Rows are kept around until all children are produced; total memory is
  // one copy of the decompressed matrix.
  std::vector<std::vector<std::pair<index_t, T>>> rows_data(
      static_cast<std::size_t>(n));
  std::vector<std::pair<index_t, T>> merged;
  for (const index_t x : tree_.topological_order()) {
    const auto cols = delta_.row_indices(x);
    const auto vals = delta_.row_values(x);
    const index_t p = tree_.parent(x);
    if (p == tree_.virtual_root()) {
      auto& row = rows_data[x];
      row.reserve(cols.size());
      for (std::size_t k = 0; k < cols.size(); ++k) {
        CBM_DCHECK(vals[k] > T{0}, "root rows carry only positive deltas");
        row.emplace_back(cols[k], vals[k]);
      }
      continue;
    }
    // Sorted merge of the parent's columns with the delta list.
    const auto& parent_row = rows_data[p];
    merged.clear();
    merged.reserve(parent_row.size() + cols.size());
    std::size_t i = 0, k = 0;
    while (i < parent_row.size() || k < cols.size()) {
      if (k == cols.size() ||
          (i < parent_row.size() && parent_row[i].first < cols[k])) {
        merged.push_back(parent_row[i++]);
      } else if (i == parent_row.size() || cols[k] < parent_row[i].first) {
        CBM_DCHECK(vals[k] > T{0}, "insertion delta must be positive");
        merged.emplace_back(cols[k], vals[k]);
        ++k;
      } else {
        // Same column: a negative delta deletes the inherited entry.
        CBM_DCHECK(vals[k] < T{0}, "matching delta must be a removal");
        ++i;
        ++k;
      }
    }
    rows_data[x] = merged;
  }

  std::vector<offset_t> indptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t x = 0; x < n; ++x) {
    indptr[x + 1] = indptr[x] + static_cast<offset_t>(rows_data[x].size());
  }
  std::vector<index_t> indices(static_cast<std::size_t>(indptr.back()));
  std::vector<T> values(static_cast<std::size_t>(indptr.back()));
  const bool row_scaled =
      kind_ == CbmKind::kSymScaled || kind_ == CbmKind::kTwoSided;
  for (index_t x = 0; x < n; ++x) {
    offset_t out = indptr[x];
    const T row_scale = row_scaled ? diag_[x] : T{1};
    for (const auto& [col, val] : rows_data[x]) {
      indices[out] = col;
      values[out] = row_scale * val;
      ++out;
    }
  }
  return CsrMatrix<T>(n, cols(), std::move(indptr), std::move(indices),
                      std::move(values));
}

template <typename T>
std::size_t CbmMatrix<T>::bytes() const {
  return delta_.bytes() + tree_.bytes() + diag_.size() * sizeof(T);
}

template <typename T>
std::size_t CbmMatrix<T>::scalar_ops(index_t bcols) const {
  // Per output column (paper §IV): a root-attached row costs 2·nd − 1 (pure
  // dot product of nd deltas); a compressed row costs 2·nd (dot product plus
  // the accumulation of the parent's result).
  std::size_t per_column = 0;
  for (index_t x = 0; x < rows(); ++x) {
    const auto nd = static_cast<std::size_t>(delta_.row_nnz(x));
    if (tree_.is_root_child(x)) {
      per_column += nd > 0 ? 2 * nd - 1 : 0;
    } else {
      // nd multiplies + (nd−1) adds for the delta dot product, plus one add
      // of the parent's result (Eq. 4); an identical row costs just the add.
      per_column += nd > 0 ? 2 * nd : 1;
    }
  }
  return per_column * static_cast<std::size_t>(bcols);
}

template class CbmMatrix<float>;
template class CbmMatrix<double>;

}  // namespace cbm
